"""Tests for the shared paper-expectations table."""

import math

import pytest

from repro.errors import ExperimentError
from repro.harness import (
    EXPECTATIONS,
    EXPERIMENTS,
    ExperimentResult,
    expectations_for,
    get_expectation,
    headline_value,
    parse_measurement,
    scoreboard_experiments,
)


class TestTableShape:
    def test_ids_unique(self):
        ids = [e.id for e in EXPECTATIONS]
        assert len(ids) == len(set(ids))

    def test_experiments_exist(self):
        for expectation in EXPECTATIONS:
            assert expectation.experiment in EXPERIMENTS, expectation.id

    def test_bands_are_sane(self):
        for expectation in EXPECTATIONS:
            assert expectation.lo < expectation.hi, expectation.id

    def test_paper_value_inside_own_band_when_published(self):
        # Where the paper publishes a number, the acceptance band must
        # at least admit the paper's own value.
        for expectation in EXPECTATIONS:
            if not math.isnan(expectation.paper_value):
                assert expectation.check(expectation.paper_value), expectation.id

    def test_headline_coverage(self):
        # The abstract's four headline metrics are all represented.
        ids = {e.id for e in expectations_for("headline")}
        for metric in ("speedup", "energy_savings", "area_overhead"):
            assert f"headline.{metric}.GTX980" in ids
            assert f"headline.{metric}.TX1" in ids

    def test_scoreboard_covers_required_figures(self):
        covered = scoreboard_experiments()
        for required in ("headline", "fig9", "fig10", "fig12"):
            assert required in covered

    def test_lookup(self):
        expectation = get_expectation("headline.speedup.TX1")
        assert expectation.paper_value == 2.32
        with pytest.raises(ExperimentError, match="unknown expectation"):
            get_expectation("headline.nonsense")


class TestChecks:
    def test_band_is_exclusive(self):
        expectation = get_expectation("fig12.coalescing_improvement.avg")
        assert expectation.check(27.0)
        assert not expectation.check(10.0)
        assert not expectation.check(60.0)

    def test_nan_never_passes(self):
        for expectation in EXPECTATIONS:
            assert not expectation.check(float("nan")), expectation.id

    def test_parse_measurement(self):
        assert parse_measurement("1.37x") == pytest.approx(1.37)
        assert parse_measurement("84.7%") == pytest.approx(84.7)
        assert parse_measurement("~71%") == pytest.approx(71.0)
        assert parse_measurement(" 3.3 ") == pytest.approx(3.3)


class TestExtraction:
    @staticmethod
    def headline_table() -> ExperimentResult:
        result = ExperimentResult(
            "headline", "headline", ("metric", "gpu", "measured", "paper")
        )
        result.add_row("speedup", "TX1", "2.10x", "2.32x")
        result.add_row("energy_savings", "TX1", "52.0%", "69%")
        return result

    def test_headline_value(self):
        table = self.headline_table()
        assert headline_value(table, "speedup", "TX1") == pytest.approx(2.10)
        assert math.isnan(headline_value(table, "speedup", "GTX980"))

    def test_headline_expectation_end_to_end(self):
        table = self.headline_table()
        expectation = get_expectation("headline.speedup.TX1")
        assert expectation.check(expectation.extract(table))
        skipped = get_expectation("headline.speedup.GTX980")
        assert math.isnan(skipped.extract(table))

    def test_fig9_extractors_on_synthetic_rows(self):
        result = ExperimentResult(
            "fig9", "energy",
            ("algorithm", "gpu", "dataset", "normalized", "gpu_share", "scu_share"),
        )
        result.add_row("bfs", "TX1", "kron", 0.2, 0.1, 0.1)
        result.add_row("sssp", "TX1", "kron", 0.4, 0.2, 0.2)
        result.add_row("pagerank", "TX1", "kron", 0.8, 0.7, 0.1)
        worst = get_expectation("fig9.normalized_energy.traversal.max")
        assert worst.extract(result) == pytest.approx(0.4)
        ratio = get_expectation("fig9.normalized_energy.bfs_over_pagerank")
        assert ratio.extract(result) == pytest.approx(0.25)
