"""Tests for graph structural statistics."""

import numpy as np
import pytest

from repro.graph import build_csr, frontier_duplicate_rate, graph_stats
from repro.graph.analysis import degree_gini, largest_component_fraction


def star(n=10):
    src = np.zeros(n - 1, dtype=np.int64)
    dst = np.arange(1, n, dtype=np.int64)
    return build_csr(n, src, dst)


class TestDegreeGini:
    def test_uniform_degrees_zero(self):
        assert degree_gini(np.full(100, 5)) == pytest.approx(0.0, abs=0.02)

    def test_single_hub_near_one(self):
        degrees = np.zeros(100, dtype=np.int64)
        degrees[0] = 1000
        assert degree_gini(degrees) > 0.9

    def test_empty(self):
        assert degree_gini(np.array([], dtype=np.int64)) == 0.0

    def test_all_zero(self):
        assert degree_gini(np.zeros(10, dtype=np.int64)) == 0.0


class TestLargestComponent:
    def test_connected_graph(self):
        g = build_csr(4, np.array([0, 1, 2]), np.array([1, 2, 3]), symmetrize=True)
        assert largest_component_fraction(g) == 1.0

    def test_two_halves(self):
        g = build_csr(4, np.array([0, 2]), np.array([1, 3]), symmetrize=True)
        assert largest_component_fraction(g) == 0.5

    def test_empty_graph(self):
        g = build_csr(3, np.array([], dtype=np.int64), np.array([], dtype=np.int64))
        assert largest_component_fraction(g) == pytest.approx(1 / 3)

    def test_directed_edges_count_as_weak_links(self):
        # one-directional edge still connects weakly
        g = build_csr(2, np.array([0]), np.array([1]))
        assert largest_component_fraction(g) == 1.0


class TestGraphStats:
    def test_star_stats(self):
        stats = graph_stats(star(11))
        assert stats.num_nodes == 11
        assert stats.num_edges == 10
        assert stats.max_degree == 10
        assert stats.largest_component_fraction == 1.0

    def test_as_row_units(self):
        stats = graph_stats(star(2000))
        name, nodes_k, edges_m, degree = stats.as_row()
        assert nodes_k == 2.0
        assert edges_m == pytest.approx(0.002)


class TestFrontierDuplicateRate:
    def test_no_duplicates(self):
        assert frontier_duplicate_rate(np.arange(10)) == 0.0

    def test_all_duplicates(self):
        assert frontier_duplicate_rate(np.zeros(10, dtype=np.int64)) == 0.9

    def test_empty(self):
        assert frontier_duplicate_rate(np.array([], dtype=np.int64)) == 0.0
