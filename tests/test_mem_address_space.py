"""Tests for the synthetic address space and device-array plumbing."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.mem import AddressSpace, DeviceContext


class TestAddressSpace:
    def test_allocations_are_disjoint(self):
        space = AddressSpace()
        a = space.alloc("a", 100, 4)
        b = space.alloc("b", 50, 8)
        assert a.base + a.size_bytes <= b.base

    def test_alignment(self):
        space = AddressSpace(alignment=256)
        space.alloc("a", 3, 4)  # 12 bytes
        b = space.alloc("b", 1, 4)
        assert b.base % 256 == 0

    def test_get_by_name(self):
        space = AddressSpace()
        a = space.alloc("labels", 10, 4)
        assert space.get("labels") is a

    def test_get_unknown_raises(self):
        with pytest.raises(SimulationError, match="no allocation"):
            AddressSpace().get("ghost")

    def test_capacity_exhaustion(self):
        space = AddressSpace(capacity_bytes=1024)
        with pytest.raises(SimulationError, match="exhausted"):
            space.alloc("big", 1024, 4)

    def test_invalid_request(self):
        with pytest.raises(SimulationError):
            AddressSpace().alloc("bad", -1, 4)

    def test_bytes_in_use(self):
        space = AddressSpace()
        space.alloc("a", 10, 4)
        assert space.bytes_in_use == 40

    def test_addresses_all_elements(self):
        space = AddressSpace()
        a = space.alloc("a", 4, 4)
        assert list(a.addresses()) == [a.base, a.base + 4, a.base + 8, a.base + 12]

    def test_addresses_indexed(self):
        space = AddressSpace()
        a = space.alloc("a", 10, 8)
        assert list(a.addresses(np.array([2, 0]))) == [a.base + 16, a.base]


class TestDeviceContext:
    def test_array_wraps_values(self):
        ctx = DeviceContext()
        arr = ctx.array("x", np.arange(5))
        assert arr.size == 5
        assert len(arr) == 5
        assert arr.name == "x"

    def test_names_uniquified(self):
        ctx = DeviceContext()
        a = ctx.array("frontier", np.arange(3))
        b = ctx.array("frontier", np.arange(3))
        assert a.name == "frontier"
        assert b.name == "frontier.1"
        assert a.alloc.base != b.alloc.base

    def test_bitmask_is_packed(self):
        ctx = DeviceContext()
        mask = ctx.bitmask("m", np.ones(64, dtype=bool))
        # 64 bits -> two 4-byte words of backing storage.
        assert mask.alloc.size_bytes == 8
        assert mask.values.size == 64

    def test_bitmask_minimum_one_word(self):
        ctx = DeviceContext()
        mask = ctx.bitmask("m", np.array([True]))
        assert mask.alloc.size_bytes == 4

    def test_element_bytes(self):
        ctx = DeviceContext()
        arr = ctx.array("w", np.zeros(4), elem_bytes=8)
        assert arr.alloc.size_bytes == 32
