"""SSSP (near-far) correctness and cost-report structure."""

import numpy as np
import pytest

from repro.algorithms import SystemMode, run_algorithm, sssp_reference
from repro.algorithms.sssp import _dedup_best
from repro.graph import build_csr
from repro.graph.generators import (
    generate_delaunay,
    generate_kron,
    generate_road_network,
)
from repro.phases import Engine

GRAPHS = {
    "kron": generate_kron(scale=9, edge_factor=8, seed=21),
    "road": generate_road_network(side=20, seed=22),
    "delaunay": generate_delaunay(num_points=400, seed=23),
}


def assert_distances_match(computed: np.ndarray, expected: np.ndarray) -> None:
    reached = ~np.isinf(expected)
    assert np.array_equal(np.isinf(computed), np.isinf(expected))
    assert np.allclose(computed[reached], expected[reached])


class TestCorrectness:
    @pytest.mark.parametrize("graph_name", sorted(GRAPHS))
    @pytest.mark.parametrize("mode", list(SystemMode))
    def test_matches_dijkstra(self, graph_name, mode):
        graph = GRAPHS[graph_name]
        dist = run_algorithm("sssp", graph, "TX1", mode, source=0).result
        assert_distances_match(dist, sssp_reference(graph, 0))

    @pytest.mark.parametrize("mode", list(SystemMode))
    def test_matches_dijkstra_on_gtx980(self, mode):
        graph = GRAPHS["kron"]
        dist = run_algorithm("sssp", graph, "GTX980", mode, source=5).result
        assert_distances_match(dist, sssp_reference(graph, 5))

    def test_paper_figure2_distances(self):
        # Figure 2c: SSSP distances from A (weights of Figure 2b).
        offsets = np.array([0, 3, 5, 6, 8, 8, 8, 8])
        edges = np.array([1, 2, 3, 4, 5, 5, 2, 6])
        weights = np.array([2.0, 3.0, 1.0, 1.0, 1.0, 2.0, 1.0, 2.0])
        graph = build_csr(
            7,
            np.repeat(np.arange(7), np.diff(offsets)),
            edges,
            weights,
            deduplicate=False,
        )
        dist = run_algorithm("sssp", graph, "TX1", SystemMode.SCU_ENHANCED, source=0).result
        assert list(dist) == [0.0, 2.0, 2.0, 1.0, 3.0, 3.0, 3.0]

    def test_delta_parameter_does_not_change_result(self):
        graph = GRAPHS["road"]
        expected = sssp_reference(graph, 0)
        for delta in (1.0, 3.0, 20.0):
            dist = run_algorithm(
                "sssp", graph, "TX1", SystemMode.SCU_ENHANCED, source=0, delta=delta
            ).result
            assert_distances_match(dist, expected)

    def test_unreachable_nodes_are_inf(self):
        graph = build_csr(3, np.array([0]), np.array([1]), np.array([4.0]))
        dist = run_algorithm("sssp", graph, "TX1", SystemMode.GPU, source=0).result
        assert dist[2] == np.inf


class TestDedupBest:
    def test_keeps_minimum_cost_per_destination(self):
        dests = np.array([5, 5, 7, 5])
        costs = np.array([3.0, 1.0, 2.0, 4.0])
        keep = _dedup_best(dests, costs)
        assert list(keep) == [False, True, True, False]

    def test_empty(self):
        assert _dedup_best(np.array([], dtype=np.int64), np.array([])).size == 0

    def test_unique_dests_all_kept(self):
        keep = _dedup_best(np.arange(10), np.ones(10))
        assert keep.all()


class TestReports:
    def test_atomics_counted(self):
        report = run_algorithm("sssp", GRAPHS["kron"], "TX1", SystemMode.GPU).report
        # atomicMin relaxations show up in the process kernels.
        process_phases = [p for p in report if "contract.process" in p.name]
        assert process_phases

    def test_enhanced_reduces_gpu_instructions(self):
        base = run_algorithm("sssp", GRAPHS["kron"], "TX1", SystemMode.GPU).report
        enh = run_algorithm("sssp", GRAPHS["kron"], "TX1", SystemMode.SCU_ENHANCED).report
        assert enh.instructions(engine=Engine.GPU) < base.instructions(engine=Engine.GPU)

    def test_enhanced_beats_baseline_time(self):
        base = run_algorithm("sssp", GRAPHS["kron"], "TX1", SystemMode.GPU).report
        enh = run_algorithm("sssp", GRAPHS["kron"], "TX1", SystemMode.SCU_ENHANCED).report
        assert enh.time_s() < base.time_s()

    def test_far_pile_phases_present_on_road_network(self):
        # Road networks drain many thresholds, exercising far-pile reuse.
        report = run_algorithm("sssp", GRAPHS["road"], "TX1", SystemMode.SCU_ENHANCED).report
        far_filters = [p for p in report if "far" in p.name]
        assert far_filters
