"""Cross-module property tests (hypothesis) on the core invariants.

These pin down the contracts the whole reproduction rests on:
compaction never invents or loses data, grouping is a permutation that
only improves locality, filtering is conservative (lossy on duplicates,
never on first occurrences), and the coalescers agree with brute-force
references.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    HashTableConfig,
    access_expansion_compaction,
    data_compaction,
    filter_best_cost,
    filter_unique,
    group_order,
    replication_compaction,
)
from repro.graph import build_csr
from repro.mem import SECTOR_BYTES, coalesce_warp

ids_lists = st.lists(st.integers(min_value=0, max_value=40), min_size=0, max_size=300)
TABLE = HashTableConfig("prop", 64 * 4, 1, 4)
COST_TABLE = HashTableConfig("prop8", 64 * 8, 1, 8)


class TestCompactionInvariants:
    @given(ids_lists, st.lists(st.booleans(), min_size=0, max_size=300))
    @settings(max_examples=80, deadline=None)
    def test_compaction_is_subsequence(self, raw, raw_mask):
        n = min(len(raw), len(raw_mask))
        data = np.asarray(raw[:n], dtype=np.int64)
        mask = np.asarray(raw_mask[:n], dtype=bool)
        out = data_compaction(data, mask)
        # output == the masked subsequence, order preserved
        assert list(out) == [v for v, keep in zip(raw[:n], raw_mask[:n]) if keep]

    @given(st.lists(st.integers(min_value=0, max_value=6), min_size=1, max_size=60))
    @settings(max_examples=60, deadline=None)
    def test_expansion_covers_whole_csr(self, degrees):
        """Expanding every node's full adjacency reproduces the edge array."""
        cnt = np.asarray(degrees, dtype=np.int64)
        offsets = np.zeros(cnt.size, dtype=np.int64)
        np.cumsum(cnt[:-1], out=offsets[1:])
        edges = np.arange(int(cnt.sum()), dtype=np.int64)
        out = access_expansion_compaction(edges, offsets, cnt)
        assert np.array_equal(out, edges)

    @given(ids_lists)
    @settings(max_examples=60, deadline=None)
    def test_unit_replication_is_identity(self, raw):
        data = np.asarray(raw, dtype=np.int64)
        out = replication_compaction(data, np.ones(data.size, dtype=np.int64))
        assert np.array_equal(out, data)


class TestFilterInvariants:
    @given(ids_lists)
    @settings(max_examples=80, deadline=None)
    def test_filter_conservative(self, raw):
        """Filtering never loses a value and never keeps more than the input."""
        ids = np.asarray(raw, dtype=np.int64)
        keep = filter_unique(ids, TABLE)
        assert set(ids[keep].tolist()) == set(raw)
        assert keep.sum() >= len(set(raw))  # lossy: may keep extra copies

    @given(ids_lists)
    @settings(max_examples=60, deadline=None)
    def test_best_cost_keeps_global_minimum(self, raw):
        """For every id, the copy with the global minimum cost survives."""
        ids = np.asarray(raw, dtype=np.int64)
        costs = np.asarray([(v * 37 + i * 11) % 23 for i, v in enumerate(raw)], float)
        keep = filter_best_cost(ids, costs, COST_TABLE)
        for value in set(raw):
            of_value = ids == value
            best = costs[of_value].min()
            kept_costs = costs[of_value & keep]
            assert kept_costs.size > 0
            assert kept_costs.min() == best


class TestGroupingInvariants:
    @given(ids_lists, st.sampled_from([1, 4, 64]))
    @settings(max_examples=80, deadline=None)
    def test_group_order_is_permutation(self, raw, entries):
        blocks = np.asarray(raw, dtype=np.int64)
        table = HashTableConfig("t", entries * 32, 1, 32)
        perm = group_order(blocks, table)
        assert np.array_equal(np.sort(perm), np.arange(blocks.size))

    @given(ids_lists)
    @settings(max_examples=60, deadline=None)
    def test_grouping_never_splits_adjacent_same_block(self, raw):
        """Same-block adjacency never decreases under grouping."""
        blocks = np.asarray(raw, dtype=np.int64)
        if blocks.size < 2:
            return
        table = HashTableConfig("t", 64 * 32, 1, 32)
        perm = group_order(blocks, table)
        before = int(np.sum(blocks[1:] == blocks[:-1]))
        reordered = blocks[perm]
        after = int(np.sum(reordered[1:] == reordered[:-1]))
        assert after >= before


class TestCoalescerAgainstBruteForce:
    @given(
        st.lists(st.integers(min_value=0, max_value=1 << 12), min_size=1, max_size=128)
    )
    @settings(max_examples=80, deadline=None)
    def test_warp_coalescer_matches_set_count(self, raw):
        addresses = np.asarray(raw, dtype=np.int64) * 4
        result = coalesce_warp(addresses)
        expected = 0
        for start in range(0, len(raw), 32):
            warp = addresses[start : start + 32]
            expected += len({int(a) // SECTOR_BYTES for a in warp})
        assert result.transactions == expected


class TestCsrBuilderInvariants:
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=19),
                st.integers(min_value=0, max_value=19),
            ),
            min_size=0,
            max_size=100,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_builder_preserves_edge_multiset(self, pairs):
        src = np.asarray([p[0] for p in pairs], dtype=np.int64)
        dst = np.asarray([p[1] for p in pairs], dtype=np.int64)
        graph = build_csr(20, src, dst, deduplicate=False, remove_self_loops=False)
        rebuilt = sorted(zip(graph.edge_sources().tolist(), graph.edges.tolist()))
        assert rebuilt == sorted(zip(src.tolist(), dst.tolist()))

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=19),
                st.integers(min_value=0, max_value=19),
            ),
            min_size=0,
            max_size=100,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_dedup_yields_unique_pairs(self, pairs):
        src = np.asarray([p[0] for p in pairs], dtype=np.int64)
        dst = np.asarray([p[1] for p in pairs], dtype=np.int64)
        graph = build_csr(20, src, dst, deduplicate=True)
        rebuilt = list(zip(graph.edge_sources().tolist(), graph.edges.tolist()))
        assert len(rebuilt) == len(set(rebuilt))
