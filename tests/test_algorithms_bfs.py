"""BFS correctness and cost-report structure across all system variants."""

import numpy as np
import pytest

from repro.algorithms import SystemMode, bfs_reference, run_algorithm, run_bfs
from repro.core import build_system
from repro.errors import SimulationError
from repro.graph import build_csr
from repro.graph.generators import (
    generate_collaboration,
    generate_kron,
    generate_road_network,
)
from repro.phases import Engine, PhaseKind

GRAPHS = {
    "kron": generate_kron(scale=9, edge_factor=8, seed=11),
    "road": generate_road_network(side=24, seed=12),
    "collab": generate_collaboration(num_authors=600, num_papers=1200, seed=13),
}


class TestCorrectness:
    @pytest.mark.parametrize("graph_name", sorted(GRAPHS))
    @pytest.mark.parametrize("mode", list(SystemMode))
    def test_matches_reference(self, graph_name, mode):
        graph = GRAPHS[graph_name]
        dist = run_algorithm("bfs", graph, "TX1", mode, source=0).result
        assert np.array_equal(dist, bfs_reference(graph, 0))

    @pytest.mark.parametrize("mode", list(SystemMode))
    def test_matches_reference_on_gtx980(self, mode):
        graph = GRAPHS["kron"]
        dist = run_algorithm("bfs", graph, "GTX980", mode, source=3).result
        assert np.array_equal(dist, bfs_reference(graph, 3))

    def test_disconnected_nodes_unreached(self):
        graph = build_csr(4, np.array([0]), np.array([1]))
        dist = run_algorithm("bfs", graph, "TX1", SystemMode.GPU, source=0).result
        assert dist[0] == 0 and dist[1] == 1
        assert dist[2] == -1 and dist[3] == -1

    def test_single_node_source(self):
        graph = build_csr(1, np.array([], dtype=np.int64), np.array([], dtype=np.int64))
        outcome = run_algorithm("bfs", graph, "TX1", SystemMode.GPU, source=0)
        dist = outcome.result
        report = outcome.report
        assert dist[0] == 0
        assert report.time_s() >= 0

    def test_paper_figure2_distances(self):
        # Figure 2c: BFS distances from A over the reference graph.
        offsets = np.array([0, 3, 5, 6, 8, 8, 8, 8])
        edges = np.array([1, 2, 3, 4, 5, 5, 2, 6])
        graph = build_csr(
            7,
            np.repeat(np.arange(7), np.diff(offsets)),
            edges,
            symmetrize=False,
            deduplicate=False,
        )
        dist = run_algorithm("bfs", graph, "TX1", SystemMode.SCU_ENHANCED, source=0).result
        assert list(dist) == [0, 1, 1, 1, 2, 2, 2]


class TestReports:
    def make_report(self, mode, gpu="TX1"):
        report = run_algorithm("bfs", GRAPHS["kron"], gpu, mode, source=0).report
        return report

    def test_gpu_mode_has_no_scu_phases(self):
        report = self.make_report(SystemMode.GPU)
        assert not report.select(engine=Engine.SCU)

    def test_scu_modes_have_scu_compaction(self):
        for mode in (SystemMode.SCU_BASIC, SystemMode.SCU_ENHANCED):
            report = self.make_report(mode)
            scu_phases = report.select(engine=Engine.SCU)
            assert scu_phases
            assert all(p.kind is PhaseKind.COMPACTION for p in scu_phases)

    def test_baseline_compaction_fraction_in_figure1_band(self):
        report = self.make_report(SystemMode.GPU)
        assert 0.2 < report.compaction_time_fraction() < 0.9

    def test_enhanced_reduces_gpu_instructions(self):
        base = self.make_report(SystemMode.GPU)
        enhanced = self.make_report(SystemMode.SCU_ENHANCED)
        gpu_base = base.instructions(engine=Engine.GPU)
        gpu_enh = enhanced.instructions(engine=Engine.GPU)
        # Section 6.3: filtering removes ~71% of BFS GPU instructions.
        assert gpu_enh < 0.6 * gpu_base

    def test_enhanced_is_fastest_system(self):
        times = {
            mode: self.make_report(mode).time_s() for mode in SystemMode
        }
        assert times[SystemMode.SCU_ENHANCED] < times[SystemMode.GPU]

    def test_enhanced_saves_energy(self):
        base = self.make_report(SystemMode.GPU)
        enh = self.make_report(SystemMode.SCU_ENHANCED)
        assert enh.total_energy_j() < base.total_energy_j()

    def test_static_energy_positive(self):
        report = self.make_report(SystemMode.GPU)
        assert report.static_energy_j > 0

    def test_phase_names_prefixed(self):
        report = self.make_report(SystemMode.SCU_BASIC)
        for phase in report:
            assert phase.name.startswith(("bfs.", "scu."))


class TestErrors:
    def test_scu_mode_requires_scu(self):
        system = build_system("TX1", mode="gpu")
        with pytest.raises(SimulationError, match="requires a system with an SCU"):
            run_bfs(GRAPHS["road"], system, SystemMode.SCU_BASIC)
