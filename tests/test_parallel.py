"""Tests for the parallel sweep engine (repro.harness.parallel).

Covers the generic scheduler (ordering, retry after worker crash,
per-cell timeout, in-process fallback) with cheap synthetic workers,
and the simulation-cell layer's determinism contract: ``--jobs N``
produces byte-identical simulated metrics for every N.
"""

import os
import time

import pytest

from repro.algorithms.common import SystemMode
from repro.bench import run_bench
from repro.bench.runner import BenchGrid
from repro.errors import ExperimentError
from repro.harness import (
    EXPERIMENT_CACHE_SIZE,
    clear_experiment_cache,
    experiment_cache_len,
    prime_experiment_cache,
)
from repro.harness.parallel import (
    SweepCell,
    SweepFailure,
    run_sweep,
    simulate_cell,
    sweep_cells,
)

# ---------------------------------------------------------------------------
# Module-level workers (must be picklable by reference for fork dispatch)
# ---------------------------------------------------------------------------


def square(task):
    return task * task


def flaky_once(task):
    """Crash hard on the first attempt, succeed on the retry.

    ``task`` is ``(marker_path, value)``: the marker file records that a
    first attempt happened.  ``os._exit`` dies without sending a result,
    which is exactly what an OOM kill looks like to the scheduler.
    """
    marker, value = task
    if not os.path.exists(marker):
        with open(marker, "w") as handle:
            handle.write("attempted")
        os._exit(1)
    return value


def dies_in_workers(task):
    """Succeed only in the parent process — every worker attempt crashes."""
    parent_pid, value = task
    if os.getpid() != parent_pid:
        os._exit(1)
    return value


def hangs_in_workers(task):
    """Sleep past any deadline in workers, return instantly in the parent."""
    parent_pid, value = task
    if os.getpid() != parent_pid:
        time.sleep(60.0)
    return value


def always_raises(task):
    raise ValueError(f"bad task {task!r}")


class TestRunSweep:
    def test_serial_runs_in_process(self):
        outcomes = run_sweep([1, 2, 3], square, jobs=1)
        assert [o.value for o in outcomes] == [1, 4, 9]
        assert all(o.worker_pid == os.getpid() for o in outcomes)
        assert all(o.attempts == 1 and not o.fell_back for o in outcomes)

    def test_parallel_results_in_task_order(self):
        tasks = list(range(7))
        outcomes = run_sweep(tasks, square, jobs=3)
        assert [o.index for o in outcomes] == tasks
        assert [o.value for o in outcomes] == [t * t for t in tasks]

    def test_parallel_matches_serial(self):
        tasks = [3, 1, 4, 1, 5, 9]
        serial = [o.value for o in run_sweep(tasks, square, jobs=1)]
        parallel = [o.value for o in run_sweep(tasks, square, jobs=4)]
        assert serial == parallel

    def test_worker_crash_is_retried(self, tmp_path):
        marker = str(tmp_path / "first-attempt")
        (outcome,) = run_sweep(
            [(marker, 42)], flaky_once, jobs=2, retries=1
        )
        assert outcome.value == 42
        assert outcome.attempts == 2
        assert not outcome.fell_back

    def test_exhausted_retries_fall_back_in_process(self):
        task = (os.getpid(), 7)
        (outcome,) = run_sweep([task], dies_in_workers, jobs=2, retries=1)
        assert outcome.value == 7
        assert outcome.fell_back
        assert outcome.worker_pid == os.getpid()
        assert outcome.attempts == 3  # two worker crashes + the fallback

    def test_timeout_kills_worker_and_falls_back(self):
        task = (os.getpid(), 11)
        started = time.perf_counter()
        (outcome,) = run_sweep(
            [task], hangs_in_workers, jobs=2, timeout_s=0.5, retries=0
        )
        elapsed = time.perf_counter() - started
        assert outcome.value == 11
        assert outcome.fell_back
        assert elapsed < 30.0  # the 60 s worker sleep was cut short

    def test_worker_exception_propagates_via_fallback(self):
        # Retries exhaust, then the in-process fallback raises for real.
        with pytest.raises(ValueError, match="bad task"):
            run_sweep([1], always_raises, jobs=2, retries=0)

    def test_empty_task_list(self):
        assert run_sweep([], square, jobs=4) == []

    def test_no_fallback_timeout_raises_sweep_failure(self):
        task = (os.getpid(), 11)
        started = time.perf_counter()
        with pytest.raises(SweepFailure) as excinfo:
            run_sweep(
                [task], hangs_in_workers, jobs=2,
                timeout_s=0.5, retries=0, fallback=False,
            )
        elapsed = time.perf_counter() - started
        assert excinfo.value.reason == "timeout"
        assert excinfo.value.attempts == 1
        assert elapsed < 30.0  # hung worker was killed, never re-run inline

    def test_no_fallback_error_raises_sweep_failure_with_detail(self):
        with pytest.raises(SweepFailure) as excinfo:
            run_sweep([1], always_raises, jobs=2, retries=0, fallback=False)
        assert excinfo.value.reason == "error"
        assert "bad task" in str(excinfo.value)

    def test_no_fallback_crash_raises_sweep_failure(self):
        task = (os.getpid(), 7)
        with pytest.raises(SweepFailure) as excinfo:
            run_sweep([task], dies_in_workers, jobs=2, retries=1, fallback=False)
        assert excinfo.value.reason == "crashed"
        assert excinfo.value.attempts == 2  # initial attempt + one retry


# The smallest real simulation cell: BFS on the smallest dataset.
CELL = SweepCell(algorithm="bfs", dataset="human", gpu="TX1", mode=SystemMode.GPU)


def _sim_fingerprint(report):
    return (
        report.time_s(),
        report.total_energy_j(),
        report.dram_bytes(),
        report.instructions(),
        len(report.phases),
    )


class TestSweepCells:
    def test_jobs_must_be_positive(self):
        with pytest.raises(ExperimentError, match="jobs"):
            sweep_cells([CELL], jobs=0)

    def test_serial_and_parallel_reports_identical(self):
        cells = [
            SweepCell(algorithm="bfs", dataset="human", gpu="TX1", mode=mode)
            for mode in SystemMode
        ]
        serial = sweep_cells(cells, jobs=1, prime_cache=False)
        parallel = sweep_cells(cells, jobs=2, prime_cache=False)
        assert [o.cell for o in serial] == cells
        assert [o.cell for o in parallel] == cells
        for a, b in zip(serial, parallel):
            assert _sim_fingerprint(a.payload.report) == _sim_fingerprint(
                b.payload.report
            )

    def test_reps_record_warmup_and_samples(self):
        cell = SweepCell(
            algorithm="bfs",
            dataset="human",
            gpu="TX1",
            mode=SystemMode.GPU,
            reps=2,
        )
        payload = simulate_cell(cell)
        assert len(payload.wall_samples) == 2
        assert payload.warmup_s is not None and payload.warmup_s > 0.0

    def test_no_reps_skips_wall_measurement(self):
        payload = simulate_cell(CELL)
        assert payload.wall_samples == ()
        assert payload.warmup_s is None

    def test_worker_metrics_come_back_with_the_payload(self):
        payload = simulate_cell(CELL)
        names = {entry["metric"] for entry in payload.metrics}
        assert any(name.startswith("mem.") for name in names)

    def test_sweep_primes_the_experiment_cache(self):
        clear_experiment_cache()
        sweep_cells([CELL], jobs=1)
        assert experiment_cache_len() == 1
        from repro.harness.experiments import _MEMO

        assert CELL.key in _MEMO


class TestExperimentCacheBound:
    def test_repeated_priming_stays_bounded(self):
        clear_experiment_cache()
        for sweep in range(3):
            for i in range(EXPERIMENT_CACHE_SIZE):
                prime_experiment_cache(("fake", sweep, i), object())
            assert experiment_cache_len() <= EXPERIMENT_CACHE_SIZE
        clear_experiment_cache()

    def test_repeated_sweeps_do_not_grow_the_cache(self):
        clear_experiment_cache()
        sweep_cells([CELL], jobs=1)
        first = experiment_cache_len()
        sweep_cells([CELL], jobs=1)
        assert experiment_cache_len() == first
        clear_experiment_cache()


class TestRunBenchDeterminism:
    """The acceptance contract: --jobs N never changes simulated output."""

    @staticmethod
    def tiny_grid() -> BenchGrid:
        return BenchGrid(
            algorithms=("bfs",),
            datasets=("human",),
            gpus=("TX1",),
            modes=tuple(SystemMode),
            reps=1,
            quick=True,
        )

    def test_records_identical_across_jobs(self):
        clear_experiment_cache()
        serial = run_bench(self.tiny_grid(), tag="j1", with_scoreboard=False)
        clear_experiment_cache()
        parallel = run_bench(
            self.tiny_grid(), tag="j2", with_scoreboard=False, jobs=2
        )
        assert len(serial.records) == len(parallel.records) == len(SystemMode)
        for a, b in zip(serial.records, parallel.records):
            assert (a.algorithm, a.dataset, a.gpu, a.mode) == (
                b.algorithm,
                b.dataset,
                b.gpu,
                b.mode,
            )
            assert a.effective_mode == b.effective_mode
            assert a.sim.as_dict() == b.sim.as_dict()
            assert a.wall.warmup_s is not None

    def test_worker_sim_metrics_land_in_the_artifact(self):
        clear_experiment_cache()
        artifact = run_bench(
            self.tiny_grid(), tag="jm", with_scoreboard=False, jobs=2
        )
        names = {entry["metric"] for entry in artifact.metrics}
        assert any(name.startswith("mem.") for name in names)


# ---------------------------------------------------------------------------
# Span collection across forked workers (distributed tracing)
# ---------------------------------------------------------------------------

from repro.harness.parallel import stitch_cell_spans  # noqa: E402
from repro.obs.spans import (  # noqa: E402
    SpanRecord,
    count_sim_phase_spans,
    reparent_spans,
)

STITCH_TRACE = "9" * 32
STITCH_PARENT = "a" * 16


def flaky_spans(task):
    """Crash hard on the first attempt; ship a span batch on the retry.

    Models a traced worker that gets OOM-killed mid-cell: the scheduler
    must end up with only the *successful* attempt's spans (the crashed
    attempt never sent any), and those must still re-parent cleanly.
    """
    marker, label = task
    if not os.path.exists(marker):
        with open(marker, "w") as handle:
            handle.write("attempted")
        os._exit(1)
    root = SpanRecord(
        trace_id="",
        span_id="1" * 16,
        name=f"{label}.root",
        category="sim",
        process=f"worker-{os.getpid()}",
        start_us=1_000.0,
        duration_us=500.0,
    )
    child = SpanRecord(
        trace_id="",
        span_id="2" * 16,
        parent_id=root.span_id,
        name=f"{label}.child",
        category="gpu-kernel",
        process=root.process,
        start_us=1_100.0,
        duration_us=200.0,
    )
    return [root.to_dict(), child.to_dict()]


class TestSweepTracing:
    def test_spans_survive_worker_crash_and_reparent(self, tmp_path):
        marker = str(tmp_path / "crashed-once")
        (outcome,) = run_sweep(
            [(marker, "bfs")], flaky_spans, jobs=2, retries=1
        )
        assert outcome.attempts == 2  # crash, then the attempt that shipped
        assert not outcome.fell_back
        adopted = reparent_spans(
            outcome.value, trace_id=STITCH_TRACE, parent_id=STITCH_PARENT
        )
        by_name = {span.name: span for span in adopted}
        # The worker's root was adopted under the new parent; the edge
        # *inside* the batch survived the crash/retry round trip.
        assert by_name["bfs.root"].parent_id == STITCH_PARENT
        assert by_name["bfs.child"].parent_id == by_name["bfs.root"].span_id
        assert all(span.trace_id == STITCH_TRACE for span in adopted)

    def test_collect_spans_ships_trace_less_worker_spans(self):
        cell = SweepCell(
            algorithm="bfs",
            dataset="human",
            gpu="TX1",
            mode=SystemMode.GPU,
            collect_spans=True,
        )
        (outcome,) = sweep_cells([cell], jobs=2, prime_cache=False)
        spans = outcome.payload.spans
        assert spans  # per-phase spans came over the result pipe
        assert all(span["trace_id"] == "" for span in spans)
        assert all(span["process"].startswith("worker-") for span in spans)
        assert any(span["parent_id"] is None for span in spans)  # local roots

    def test_collect_spans_does_not_change_the_report(self):
        traced_cell = SweepCell(
            algorithm="bfs",
            dataset="human",
            gpu="TX1",
            mode=SystemMode.GPU,
            collect_spans=True,
        )
        (plain,) = sweep_cells([CELL], jobs=1, prime_cache=False)
        (traced,) = sweep_cells([traced_cell], jobs=1, prime_cache=False)
        assert plain.payload.spans == ()  # off by default: no pipe cost
        assert _sim_fingerprint(plain.payload.report) == _sim_fingerprint(
            traced.payload.report
        )

    def test_stitch_cell_spans_builds_one_trace(self):
        modes = list(SystemMode)[:2]
        cells = [
            SweepCell(
                algorithm="bfs",
                dataset="human",
                gpu="TX1",
                mode=mode,
                collect_spans=True,
            )
            for mode in modes
        ]
        outcomes = sweep_cells(cells, jobs=2, prime_cache=False)
        stitched = stitch_cell_spans(
            outcomes, trace_id=STITCH_TRACE, parent_id=STITCH_PARENT
        )
        cell_spans = [s for s in stitched if s.name == "sweep.cell"]
        assert len(cell_spans) == len(modes)
        assert [s.attributes["label"] for s in cell_spans] == [
            cell.label() for cell in cells
        ]
        assert all(s.parent_id == STITCH_PARENT for s in cell_spans)
        assert all(s.trace_id == STITCH_TRACE for s in stitched)
        # Every non-cell span chains back into the stitched tree ...
        span_ids = {s.span_id for s in stitched}
        assert all(
            s.parent_id in span_ids for s in stitched if s.name != "sweep.cell"
        )
        # ... and each cell span brackets its own children in time.
        by_id = {s.span_id: s for s in stitched}
        for span in stitched:
            if span.name == "sweep.cell":
                continue
            top = span
            while top.parent_id in by_id:
                top = by_id[top.parent_id]
            assert top.start_us <= span.start_us
            assert span.end_us <= top.end_us + 1.0  # float slack
        assert count_sim_phase_spans(stitched) >= len(modes)

    def test_stitch_without_spans_synthesizes_the_cell_bracket(self):
        (outcome,) = sweep_cells([CELL], jobs=1, prime_cache=False)
        (only,) = stitch_cell_spans([outcome], trace_id=STITCH_TRACE)
        assert only.name == "sweep.cell"
        assert only.parent_id is None
        assert only.duration_us >= 0.0
        assert only.attributes["label"] == CELL.label()
        assert only.attributes["attempts"] == outcome.attempts
