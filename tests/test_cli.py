"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_arguments(self):
        args = build_parser().parse_args(["run", "bfs", "kron", "--gpu", "GTX980"])
        args2 = build_parser().parse_args(["run", "sssp", "ca", "--source", "3"])
        assert args.algorithm == "bfs" and args.gpu == "GTX980"
        assert args2.source == 3

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "dfs", "kron"])

    def test_unknown_dataset_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "bfs", "twitter"])

    def test_experiment_choices(self):
        args = build_parser().parse_args(["experiment", "fig12", "--quick"])
        assert args.id == "fig12" and args.quick


class TestCommands:
    def test_datasets(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        for name in ("ca", "cond", "delaunay", "human", "kron", "msdoor"):
            assert name in out

    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "GTX980" in out and "TX1" in out
        assert "13.27 mm2" in out and "3.65 mm2" in out

    def test_run(self, capsys):
        assert main(["run", "bfs", "human"]) == 0
        out = capsys.readouterr().out
        assert "scu-enhanced" in out and "mJ" in out

    def test_run_pagerank_ignores_source(self, capsys):
        assert main(["run", "pagerank", "human", "--source", "5"]) == 0

    def test_experiment_table(self, capsys):
        assert main(["experiment", "table1"]) == 0
        out = capsys.readouterr().out
        assert "Vector Buffering" in out

    def test_experiment_figure_quick(self, capsys):
        assert main(["experiment", "fig12", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "AVG" in out


class TestBenchCommand:
    """`repro bench` on a minimal grid (one dataset, one GPU).

    Simulation runs are memoized process-wide, so the first test pays
    the sweep and the rest mostly re-time the wall-clock reps.
    """

    BASE = ["bench", "--datasets", "delaunay", "--gpu", "TX1",
            "--reps", "1", "--no-progress"]

    def test_quick_smoke_writes_valid_artifact(self, capsys, tmp_path):
        out_path = tmp_path / "BENCH_quick.json"
        assert main(self.BASE + ["--quick", "--tag", "t", "--out", str(out_path)]) == 0
        doc = json.loads(out_path.read_text())
        assert doc["schema_version"] == 1
        assert doc["tag"] == "t"
        # --datasets overrides --quick's subset; 3 algorithms x the full
        # registered mode list (repro.backends.available_modes)
        assert doc["grid"]["datasets"] == ["delaunay"]
        assert len(doc["records"]) == 12
        record = doc["records"][0]
        assert record["wall"]["reps"] == 1
        assert record["sim"]["sim_time_s"] > 0
        assert record["sim"]["total_energy_j"] > 0
        assert doc["provenance"]["python"]
        assert doc["metrics"], "metrics snapshot must be embedded"
        assert doc["scoreboard"]["passed"] > 0
        out = capsys.readouterr().out
        assert "fidelity" in out and "artifact written" in out

    def test_compare_identical_baseline_passes(self, capsys, tmp_path):
        baseline = tmp_path / "baseline.json"
        assert main(self.BASE + ["--out", str(baseline), "--no-scoreboard"]) == 0
        capsys.readouterr()
        code = main(
            self.BASE
            + ["--out", str(tmp_path / "current.json"), "--no-scoreboard",
               "--compare", str(baseline), "--wall-tolerance", "0"]
        )
        assert code == 0
        assert "no regression" in capsys.readouterr().out

    def test_compare_detects_doctored_regression(self, capsys, tmp_path):
        baseline = tmp_path / "baseline.json"
        assert main(self.BASE + ["--out", str(baseline), "--no-scoreboard"]) == 0
        doc = json.loads(baseline.read_text())
        doc["records"][0]["sim"]["total_energy_j"] *= 1.5
        baseline.write_text(json.dumps(doc))
        capsys.readouterr()
        code = main(
            self.BASE
            + ["--out", str(tmp_path / "current.json"), "--no-scoreboard",
               "--compare", str(baseline), "--wall-tolerance", "0"]
        )
        assert code == 2
        captured = capsys.readouterr()
        assert "SIM-DRIFT" in captured.out
        assert "total_energy_j" in captured.out
        assert "REGRESSION" in captured.err

    def test_compare_missing_baseline_errors(self, capsys, tmp_path):
        code = main(
            self.BASE
            + ["--out", str(tmp_path / "c.json"), "--no-scoreboard",
               "--compare", str(tmp_path / "absent.json")]
        )
        assert code == 1
        assert "no such artifact" in capsys.readouterr().err


class TestObservabilityCommands:
    def test_trace_writes_chrome_file(self, capsys, tmp_path):
        out_path = tmp_path / "trace.json"
        assert main(["trace", "bfs", "human", "--out", str(out_path)]) == 0
        doc = json.loads(out_path.read_text())
        events = doc["traceEvents"]
        assert events and {"B", "E"} <= {e["ph"] for e in events}
        assert "perfetto" in capsys.readouterr().out

    def test_trace_jsonl_sidecar(self, tmp_path):
        out_path = tmp_path / "trace.json"
        jsonl_path = tmp_path / "trace.jsonl"
        assert main(
            ["trace", "bfs", "human", "--mode", "gpu",
             "--out", str(out_path), "--jsonl", str(jsonl_path)]
        ) == 0
        lines = jsonl_path.read_text().splitlines()
        assert lines and all(json.loads(line)["name"] for line in lines)

    def test_profile_prints_tables(self, capsys):
        assert main(["profile", "bfs", "human"]) == 0
        out = capsys.readouterr().out
        assert "wall-clock profile" in out
        assert "simulated-time attribution" in out
        assert "bfs.iteration" in out
        assert "frontier.size" in out

    def test_run_with_trace_flag(self, capsys, tmp_path):
        out_path = tmp_path / "run-trace.json"
        assert main(["run", "bfs", "human", "--trace", str(out_path)]) == 0
        doc = json.loads(out_path.read_text())
        names = {e["name"] for e in doc["traceEvents"]}
        # one top-level span per system mode, all in the same trace
        assert {"run.gpu", "run.scu-basic", "run.scu-enhanced"} <= names
