"""Tests for batched execution: kernels, runner fusion, the serve window.

The contract under test everywhere is *byte-identity*: a request
batched with any set of compatible neighbours must produce exactly the
bits the scalar path produces for it alone.  Kernel-level that is
pinned per ragged row against the scalar references (property tests
over ragged shapes, including empty rows and batches of 0/1);
runner-level against :func:`execute_request`; serve-level against a
non-batching service handling the same burst sequentially.
"""

import json
import threading
import time
import urllib.request

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import clear_run_cache, execute_request
from repro.algorithms.runner import (
    BatchItem,
    batch_compatibility_key,
    run_batch,
)
from repro.backends import available_modes
from repro.core import (
    HashTableConfig,
    batch_offsets,
    compaction_addresses,
    concat_batch,
    data_compaction,
    data_compaction_batch,
    exclusive_scan,
    filter_best_cost,
    filter_best_cost_batch,
    filter_best_cost_reference,
    filter_unique,
    filter_unique_batch,
    group_order,
    group_order_batch,
    split_batch,
)
from repro.errors import ServiceError, ServiceTimeoutError
from repro.obs.lru import LruCache
from repro.request import RunRequest
from repro.serve import ServiceConfig, SimulationService, make_server
from repro.serve.batching import BatchMember, MicroBatcher

TABLE = HashTableConfig("t", capacity_bytes=64 * 4, ways=1, bytes_per_entry=4)
COST_TABLE = HashTableConfig("tc", capacity_bytes=64 * 8, ways=1, bytes_per_entry=8)


def _ragged(rows):
    return concat_batch([np.asarray(row, dtype=np.int64) for row in rows])


# ---------------------------------------------------------------------------
# Scan + scatter primitives
# ---------------------------------------------------------------------------


class TestScanScatter:
    def test_exclusive_scan(self):
        assert list(exclusive_scan(np.array([3, 1, 4]))) == [0, 3, 4]

    def test_exclusive_scan_empty(self):
        assert exclusive_scan(np.array([], dtype=np.int64)).size == 0

    def test_compaction_addresses_are_output_slots(self):
        mask = np.array([True, False, True, True])
        assert list(compaction_addresses(mask)) == [0, 1, 1, 2]

    def test_data_compaction_is_scan_scatter(self):
        data = np.array([10, 20, 30, 40])
        mask = np.array([True, False, False, True])
        assert list(data_compaction(data, mask)) == [10, 40]

    def test_concat_split_roundtrip(self):
        rows = [[1, 2, 3], [], [7]]
        values, offsets = _ragged(rows)
        assert [list(r) for r in split_batch(values, offsets)] == rows

    def test_batch_offsets(self):
        assert list(batch_offsets(np.array([2, 0, 3]))) == [0, 2, 2, 5]


# ---------------------------------------------------------------------------
# Batched kernels == scalar references, row by row
# ---------------------------------------------------------------------------

ragged_batches = st.lists(
    st.lists(st.integers(min_value=0, max_value=40), min_size=0, max_size=40),
    min_size=0,
    max_size=5,
)
table_entries = st.sampled_from([1, 2, 8, 64, 1024])


class TestBatchedKernelsMatchScalar:
    @given(ragged_batches, table_entries)
    @settings(max_examples=60, deadline=None)
    def test_filter_unique(self, rows, entries):
        table = HashTableConfig("t", entries * 4, 1, 4)
        values, offsets = _ragged(rows)
        keep = filter_unique_batch(values, offsets, table)
        expected = [
            filter_unique(np.asarray(row, dtype=np.int64), table) for row in rows
        ]
        for r, want in enumerate(expected):
            got = keep[offsets[r] : offsets[r + 1]]
            assert np.array_equal(got, want), f"row {r} diverged"

    @given(
        st.lists(
            st.lists(
                st.tuples(
                    st.integers(min_value=0, max_value=20),
                    st.integers(min_value=0, max_value=15),
                ),
                min_size=0,
                max_size=40,
            ),
            min_size=0,
            max_size=5,
        ),
        table_entries,
    )
    @settings(max_examples=60, deadline=None)
    def test_filter_best_cost(self, rows, entries):
        table = HashTableConfig("t", entries * 8, 1, 8)
        values, offsets = _ragged([[p[0] for p in row] for row in rows])
        costs = np.concatenate(
            [np.array([float(p[1]) for p in row]) for row in rows]
        ) if rows else np.empty(0)
        keep = filter_best_cost_batch(values, costs, offsets, table)
        for r, row in enumerate(rows):
            ids = np.array([p[0] for p in row], dtype=np.int64)
            row_costs = np.array([float(p[1]) for p in row])
            want = filter_best_cost(ids, row_costs, table)
            got = keep[offsets[r] : offsets[r + 1]]
            assert np.array_equal(got, want), f"row {r} diverged"

    def test_best_cost_adversarial_near_ties_match_dict_reference(self):
        # Near-tie float costs are where the scalar fp-shift trick is
        # fragile; the batched integer-rank path must agree with the
        # dict reference bit for bit regardless of batch composition.
        rng = np.random.default_rng(7)
        for _ in range(50):
            rows = [
                rng.integers(0, 12, size=rng.integers(0, 30)).astype(np.int64)
                for _ in range(rng.integers(1, 5))
            ]
            costs_rows = [rng.random(row.size) * 1e-9 + 0.1 for row in rows]
            values, offsets = concat_batch(rows)
            costs = (
                np.concatenate(costs_rows) if rows else np.empty(0)
            )
            keep = filter_best_cost_batch(values, costs, offsets, COST_TABLE)
            for r, (ids, row_costs) in enumerate(zip(rows, costs_rows)):
                want = filter_best_cost_reference(ids, row_costs, COST_TABLE)
                got = keep[offsets[r] : offsets[r + 1]]
                assert np.array_equal(got, want)

    @given(ragged_batches, table_entries)
    @settings(max_examples=60, deadline=None)
    def test_data_compaction(self, rows, entries):
        table = HashTableConfig("t", entries * 4, 1, 4)
        values, offsets = _ragged(rows)
        keep = filter_unique_batch(values, offsets, table)
        out, out_offsets = data_compaction_batch(values, offsets, keep)
        for r, row in enumerate(rows):
            ids = np.asarray(row, dtype=np.int64)
            want = data_compaction(ids, keep[offsets[r] : offsets[r + 1]])
            got = out[out_offsets[r] : out_offsets[r + 1]]
            assert np.array_equal(got, want), f"row {r} diverged"

    @given(ragged_batches, table_entries, st.sampled_from([1, 3, 8]))
    @settings(max_examples=60, deadline=None)
    def test_group_order(self, rows, entries, group_size):
        table = HashTableConfig("t", entries * 4, 1, 4)
        values, offsets = _ragged(rows)
        perm = group_order_batch(values, offsets, table, group_size=group_size)
        for r, row in enumerate(rows):
            blocks = np.asarray(row, dtype=np.int64)
            want = group_order(blocks, table, group_size=group_size)
            got = perm[offsets[r] : offsets[r + 1]] - offsets[r]
            assert np.array_equal(got, want), f"row {r} diverged"

    def test_batch_of_one_is_exactly_the_scalar_kernel(self):
        rng = np.random.default_rng(11)
        blocks = rng.integers(0, 64, size=500).astype(np.int64)
        values, offsets = concat_batch([blocks])
        perm = group_order_batch(values, offsets, TABLE)
        assert np.array_equal(perm, group_order(blocks, TABLE))

    def test_row_results_do_not_depend_on_neighbours(self):
        # The same row must produce the same bits alone or batched with
        # arbitrary company: batching is invisible per request.
        rng = np.random.default_rng(13)
        row = rng.integers(0, 100, size=200).astype(np.int64)
        alone_v, alone_o = concat_batch([row])
        alone = filter_unique_batch(alone_v, alone_o, TABLE)
        company = [rng.integers(0, 100, size=n).astype(np.int64) for n in (0, 7, 300)]
        values, offsets = concat_batch(company[:1] + [row] + company[1:])
        batched = filter_unique_batch(values, offsets, TABLE)
        assert np.array_equal(batched[offsets[1] : offsets[2]], alone)


# ---------------------------------------------------------------------------
# LruCache.get_many
# ---------------------------------------------------------------------------


class TestGetMany:
    def test_returns_only_hits(self):
        cache = LruCache(capacity=4)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get_many(["a", "b", "c"]) == {"a": 1, "b": 2}

    def test_counts_hits_and_misses_once(self):
        from repro.obs import MetricsRegistry

        registry = MetricsRegistry()
        cache = LruCache(capacity=4, metrics_prefix="cache.c", registry=registry)
        cache.put("a", 1)
        cache.get_many(["a", "x", "y"])
        snapshot = {
            row["metric"]: row["value"] for row in registry.flat_snapshot()
        }
        assert snapshot["cache.c.hits"] == 1
        assert snapshot["cache.c.misses"] == 2

    def test_refreshes_recency(self):
        cache = LruCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get_many(["a"])  # a becomes most-recent
        cache.put("c", 3)  # evicts b, not a
        assert cache.get("a") == 1
        assert cache.get("b") is None


# ---------------------------------------------------------------------------
# run_batch == execute_request, per request
# ---------------------------------------------------------------------------


class TestRunBatch:
    def test_batched_reports_are_byte_identical_per_request(self):
        from repro.serve import run_response

        clear_run_cache()
        requests = [
            RunRequest.make("bfs", "delaunay", "TX1", mode)
            for mode in available_modes()
        ] + [RunRequest.make("sssp", "delaunay", "TX1", "scu-enhanced")]
        items = run_batch(requests, use_cache=False)
        assert [item.request for item in items] == requests
        for request, item in zip(requests, items):
            clear_run_cache()
            solo = execute_request(request).report
            assert run_response(request, item.report) == run_response(
                request, solo
            )
        clear_run_cache()

    def test_duplicate_requests_simulate_once(self):
        clear_run_cache()
        request = RunRequest.make("bfs", "delaunay", "TX1", "gpu")
        items = run_batch([request, request], use_cache=False)
        assert [item.simulated for item in items] == [True, False]
        assert items[0].report is items[1].report

    def test_cache_hits_do_not_simulate(self):
        clear_run_cache()
        request = RunRequest.make("bfs", "delaunay", "TX1", "gpu")
        run_batch([request])
        items = run_batch([request])
        assert items[0].simulated is False
        assert items[0].tier == "l1"
        clear_run_cache()

    def test_compatibility_key_excludes_mode(self):
        a = RunRequest.make("bfs", "delaunay", "TX1", "gpu")
        b = RunRequest.make("bfs", "delaunay", "TX1", "scu-enhanced")
        c = RunRequest.make("bfs", "human", "TX1", "gpu")
        assert batch_compatibility_key(a) == batch_compatibility_key(b)
        assert batch_compatibility_key(a) != batch_compatibility_key(c)


# ---------------------------------------------------------------------------
# MicroBatcher
# ---------------------------------------------------------------------------


def _request(dataset="delaunay", mode="gpu", algorithm="bfs"):
    return RunRequest.make(algorithm, dataset, "TX1", mode)


class TestMicroBatcher:
    def test_window_fuses_compatible_requests(self):
        executed = []

        def execute(members, opened):
            executed.append(len(members))
            for member in members:
                member.report = f"report-{member.request.mode.value}"

        batcher = MicroBatcher(window_s=0.5, max_size=8, execute=execute)
        results = {}

        def submit(mode):
            results[mode] = batcher.submit(_request(mode=mode), timeout_s=30.0)

        threads = [
            threading.Thread(target=submit, args=(mode,))
            for mode in ("gpu", "scu-basic")
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert executed == [2]
        assert results["gpu"].report == "report-gpu"
        assert results["scu-basic"].report == "report-scu-basic"
        assert results["gpu"].size == results["scu-basic"].size == 2
        assert batcher.open_windows() == 0

    def test_full_batch_seals_before_window_expires(self):
        def execute(members, opened):
            for member in members:
                member.report = "r"

        batcher = MicroBatcher(window_s=60.0, max_size=2, execute=execute)
        done = []

        def submit():
            batcher.submit(_request(mode="gpu"), timeout_s=30.0)
            done.append(True)

        threads = [threading.Thread(target=submit) for _ in range(2)]
        started = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=10.0)
        assert len(done) == 2  # did NOT wait the 60 s window
        assert time.perf_counter() - started < 30.0

    def test_execute_error_fails_every_member(self):
        def execute(members, opened):
            raise RuntimeError("boom")

        batcher = MicroBatcher(window_s=0.2, max_size=4, execute=execute)
        errors = []

        def submit():
            try:
                batcher.submit(_request(), timeout_s=5.0)
            except RuntimeError as error:
                errors.append(str(error))

        threads = [threading.Thread(target=submit) for _ in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == ["boom", "boom"]

    def test_max_size_one_executes_immediately(self):
        def execute(members, opened):
            members[0].report = "solo"

        batcher = MicroBatcher(window_s=60.0, max_size=1, execute=execute)
        started = time.perf_counter()
        member = batcher.submit(_request(), timeout_s=5.0)
        assert member.report == "solo"
        assert time.perf_counter() - started < 5.0  # no window wait
        assert batcher.open_windows() == 0

    def test_incompatible_keys_do_not_share_a_window(self):
        sizes = []

        def execute(members, opened):
            sizes.append(len(members))
            for member in members:
                member.report = "r"

        batcher = MicroBatcher(window_s=0.3, max_size=8, execute=execute)
        threads = [
            threading.Thread(
                target=batcher.submit,
                args=(_request(dataset=dataset),),
                kwargs={"timeout_s": 30.0},
            )
            for dataset in ("delaunay", "human")
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert sorted(sizes) == [1, 1]

    def test_rejects_bad_window_and_size(self):
        with pytest.raises(ValueError):
            MicroBatcher(window_s=0.0, max_size=2, execute=lambda m, o: None)
        with pytest.raises(ValueError):
            MicroBatcher(window_s=0.1, max_size=0, execute=lambda m, o: None)


# ---------------------------------------------------------------------------
# The serve micro-batching window, end to end
# ---------------------------------------------------------------------------


def _post(base, body, timeout=120.0):
    request = urllib.request.Request(
        base + "/run", data=body, headers={"Content-Type": "application/json"}
    )
    with urllib.request.urlopen(request, timeout=timeout) as response:
        return response.status, response.read()


def _get(base, path, timeout=30.0):
    with urllib.request.urlopen(base + path, timeout=timeout) as response:
        return response.read().decode("utf-8")


def _start(service):
    httpd = make_server(service, port=0)
    thread = threading.Thread(target=httpd.serve_forever, daemon=True)
    thread.start()
    host, port = httpd.server_address[:2]
    return httpd, f"http://{host}:{port}"


def _burst_bodies():
    return [
        json.dumps(
            {"algorithm": "bfs", "dataset": "delaunay", "gpu": "TX1", "mode": mode}
        ).encode()
        for mode in ("gpu", "scu-basic", "scu-enhanced", "iru")
    ]


class TestServeBatching:
    def test_isolate_plus_batching_is_rejected(self):
        with pytest.raises(ServiceError):
            SimulationService(
                ServiceConfig(port=0, run_isolated=True, batch_window_ms=5.0)
            )

    def test_burst_fuses_and_stays_byte_identical(self):
        bodies = _burst_bodies()

        # Sequential ground truth from a non-batching service.
        clear_run_cache()
        plain = SimulationService(ServiceConfig(port=0))
        httpd, base = _start(plain)
        try:
            expected = [_post(base, body)[1] for body in bodies]
        finally:
            httpd.shutdown()
            httpd.server_close()
            plain.drain(timeout_s=10.0)

        clear_run_cache()
        service = SimulationService(
            ServiceConfig(port=0, workers=2, batch_window_ms=250.0, batch_max=8)
        )
        httpd, base = _start(service)
        try:
            results = [None] * len(bodies)

            def worker(index):
                results[index] = _post(base, bodies[index])

            threads = [
                threading.Thread(target=worker, args=(i,))
                for i in range(len(bodies))
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert [status for status, _ in results] == [200] * len(bodies)
            assert [payload for _, payload in results] == expected

            metrics = _get(base, "/metrics")
            assert "serve_batch_size_bucket" in metrics
            counters = {}
            for line in metrics.splitlines():
                for name in (
                    "serve_batch_requests",
                    "serve_batch_batches",
                    "serve_batch_fused_requests",
                ):
                    if line.startswith(name + " "):
                        counters[name] = float(line.split()[-1])
            assert counters["serve_batch_requests"] == 4.0
            # All four are compatible; they fuse into one or (under
            # scheduling jitter) a few batches, every fused member
            # counted.
            assert counters["serve_batch_batches"] >= 1.0
            assert counters["serve_batch_fused_requests"] >= 2.0

            journal = json.loads(_get(base, "/debug/requests"))
            outcomes = [row["outcome"] for row in journal["requests"]]
            assert outcomes.count("batched") >= 2
        finally:
            httpd.shutdown()
            httpd.server_close()
            service.drain(timeout_s=10.0)
            clear_run_cache()

    def test_batch_spans_and_follower_links(self):
        bodies = _burst_bodies()
        clear_run_cache()
        service = SimulationService(
            ServiceConfig(port=0, workers=2, batch_window_ms=250.0, batch_max=8)
        )
        httpd, base = _start(service)
        try:
            threads = [
                threading.Thread(target=_post, args=(base, body))
                for body in bodies
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            batch_spans = []
            wait_spans = []
            for trace_id, _count in service.spans.trace_ids():
                for span in service.spans.get(trace_id):
                    if span.name == "serve.batch":
                        batch_spans.append(span)
                    elif span.name == "serve.batch_wait":
                        wait_spans.append(span)
            assert batch_spans, "no serve.batch span recorded"
            total_fused = sum(
                span.attributes["batch_size"]
                for span in batch_spans
                if span.attributes["batch_size"] > 1
            )
            assert total_fused >= 2
            assert wait_spans, "no serve.batch_wait follower spans"
            batch_ids = {(s.trace_id, s.span_id) for s in batch_spans}
            for span in wait_spans:
                assert span.links, "follower span lost its leader link"
                link = span.links[0]
                assert (link["trace_id"], link["span_id"]) in batch_ids
        finally:
            httpd.shutdown()
            httpd.server_close()
            service.drain(timeout_s=10.0)
            clear_run_cache()

    def test_window_disabled_by_default(self):
        service = SimulationService(ServiceConfig(port=0))
        try:
            assert service._batcher is None
        finally:
            service.drain(timeout_s=5.0)


# ---------------------------------------------------------------------------
# Sweep-engine batching (repro bench --batch-datasets)
# ---------------------------------------------------------------------------


class TestSweepBatching:
    def test_grouped_sweep_is_byte_identical_in_grid_order(self):
        from repro.algorithms.common import SystemMode
        from repro.harness.parallel import SweepCell, sweep_cells

        cells = [
            SweepCell("bfs", dataset, "TX1", SystemMode(mode))
            for dataset in ("delaunay", "human")
            for mode in ("gpu", "scu-enhanced")
        ]
        from repro.serve import run_response

        plain = sweep_cells(cells, jobs=1)
        grouped = sweep_cells(cells, jobs=1, batch_datasets=True)
        assert [o.cell for o in grouped] == [o.cell for o in plain]
        for a, b in zip(plain, grouped):
            request = a.cell.request()
            assert run_response(request, a.payload.report) == run_response(
                request, b.payload.report
            )

    def test_grouped_sweep_matches_across_workers(self):
        from repro.algorithms.common import SystemMode
        from repro.harness.parallel import SweepCell, sweep_cells

        cells = [
            SweepCell("bfs", dataset, "TX1", SystemMode("gpu"))
            for dataset in ("delaunay", "human", "kron")
        ]
        from repro.serve import run_response

        inline = sweep_cells(cells, jobs=1, batch_datasets=True)
        forked = sweep_cells(cells, jobs=2, batch_datasets=True)
        for a, b in zip(inline, forked):
            request = a.cell.request()
            assert run_response(request, a.payload.report) == run_response(
                request, b.payload.report
            )


# ---------------------------------------------------------------------------
# Loadtest burst schedule
# ---------------------------------------------------------------------------


class TestBurstSchedule:
    def test_bursts_share_a_dataset(self):
        from repro.bench.loadtest import (
            LoadtestConfig,
            build_population,
            build_schedule,
        )

        config = LoadtestConfig(requests=64, burst_datasets=4)
        population = build_population(config)
        datasets = [request.dataset for request in population]
        schedule = build_schedule(config, len(population), datasets)
        assert schedule.size == 64
        for start in range(0, 64, 4):
            burst = {datasets[k] for k in schedule[start : start + 4]}
            assert len(burst) == 1

    def test_burst_schedule_is_deterministic(self):
        from repro.bench.loadtest import (
            LoadtestConfig,
            build_population,
            build_schedule,
        )

        config = LoadtestConfig(requests=50, burst_datasets=3, seed=7)
        population = build_population(config)
        datasets = [request.dataset for request in population]
        first = build_schedule(config, len(population), datasets)
        second = build_schedule(config, len(population), datasets)
        assert np.array_equal(first, second)

    def test_zero_burst_is_plain_zipf(self):
        from repro.bench.loadtest import (
            LoadtestConfig,
            build_population,
            build_schedule,
        )

        plain = LoadtestConfig(requests=40)
        burst0 = LoadtestConfig(requests=40, burst_datasets=0)
        population = build_population(plain)
        datasets = [request.dataset for request in population]
        assert np.array_equal(
            build_schedule(plain, len(population), datasets),
            build_schedule(burst0, len(population), datasets),
        )
