"""Focused tests for the GPU timing/energy knobs added for calibration."""

import pytest

from repro.gpu import GTX980, TX1, GpuDevice, KernelSpec, kernel_timing
from repro.gpu.energy import kernel_dynamic_energy_j, system_static_power_w
from repro.errors import SimulationError
from repro.mem import MemoryStats, sequential_addresses
from repro.phases import PhaseKind


def memory_stats(transactions, *, row_hit=0.5):
    return MemoryStats(
        accesses=transactions,
        transactions=transactions,
        dram_accesses=transactions,
        dram_bytes=32 * transactions,
        row_hit_fraction=row_hit,
    )


class TestMemoryEfficiency:
    def test_lower_efficiency_slows_memory_terms(self):
        device = GpuDevice(TX1)
        stats = memory_stats(1 << 20)
        fast = kernel_timing(
            device.config, device.hierarchy, instructions=0, memory=stats,
            memory_efficiency=1.0,
        )
        slow = kernel_timing(
            device.config, device.hierarchy, instructions=0, memory=stats,
            memory_efficiency=0.5,
        )
        assert slow.dram_s == pytest.approx(2 * fast.dram_s)
        assert slow.l2_s == pytest.approx(2 * fast.l2_s)

    def test_efficiency_does_not_touch_compute(self):
        device = GpuDevice(TX1)
        a = kernel_timing(
            device.config, device.hierarchy, instructions=10**8,
            memory=MemoryStats(), memory_efficiency=0.5,
        )
        b = kernel_timing(
            device.config, device.hierarchy, instructions=10**8,
            memory=MemoryStats(), memory_efficiency=1.0,
        )
        assert a.compute_s == b.compute_s

    def test_out_of_range_rejected(self):
        with pytest.raises(SimulationError):
            KernelSpec("k", PhaseKind.PROCESSING, threads=1, memory_efficiency=0.0)


class TestDramOverride:
    def test_override_wins(self):
        device = GpuDevice(TX1)
        timing = kernel_timing(
            device.config, device.hierarchy, instructions=0,
            memory=memory_stats(1000), dram_s_override=1.0,
        )
        assert timing.dram_s == 1.0


class TestEffectiveMlp:
    def test_tx1_more_latency_bound_than_gtx980(self):
        stats = memory_stats(1 << 16)
        tx1 = kernel_timing(TX1, GpuDevice(TX1).hierarchy, instructions=0, memory=stats)
        hp = kernel_timing(
            GTX980, GpuDevice(GTX980).hierarchy, instructions=0, memory=stats
        )
        assert tx1.latency_s > 10 * hp.latency_s

    def test_latency_term_scales_with_transactions(self):
        device = GpuDevice(TX1)
        small = kernel_timing(
            device.config, device.hierarchy, instructions=0, memory=memory_stats(1000)
        )
        large = kernel_timing(
            device.config, device.hierarchy, instructions=0, memory=memory_stats(4000)
        )
        assert large.latency_s == pytest.approx(4 * small.latency_s)


class TestExtraOverhead:
    def test_extra_overhead_added_to_phase_time(self):
        device = GpuDevice(TX1)
        base = device.run(KernelSpec("a", PhaseKind.COMPACTION, threads=0))
        padded = device.run(
            KernelSpec("b", PhaseKind.COMPACTION, threads=0, extra_overhead_s=1e-3)
        )
        assert padded.time_s == pytest.approx(base.time_s + 1e-3)


class TestEnergyModel:
    def test_active_power_term(self):
        device = GpuDevice(TX1)
        idle = kernel_dynamic_energy_j(
            device.config, device.hierarchy, instructions=0,
            memory=MemoryStats(), busy_time_s=0.0,
        )
        busy = kernel_dynamic_energy_j(
            device.config, device.hierarchy, instructions=0,
            memory=MemoryStats(), busy_time_s=1.0,
        )
        assert busy - idle == pytest.approx(TX1.active_power_w)

    def test_atomics_cost_energy(self):
        device = GpuDevice(TX1)
        without = kernel_dynamic_energy_j(
            device.config, device.hierarchy, instructions=0, memory=MemoryStats()
        )
        with_atomics = kernel_dynamic_energy_j(
            device.config, device.hierarchy, instructions=0,
            memory=MemoryStats(), atomics=10**6,
        )
        assert with_atomics > without

    def test_static_power_includes_dram(self):
        assert system_static_power_w(TX1) == pytest.approx(
            TX1.static_power_w + TX1.dram.static_power_w
        )

    def test_gtx980_burns_more_active_power(self):
        assert GTX980.active_power_w > 10 * TX1.active_power_w

    def test_row_misses_cost_more_dram_energy(self):
        device = GpuDevice(GTX980)
        hit = kernel_dynamic_energy_j(
            device.config, device.hierarchy, instructions=0,
            memory=memory_stats(10**6, row_hit=1.0),
        )
        miss = kernel_dynamic_energy_j(
            device.config, device.hierarchy, instructions=0,
            memory=memory_stats(10**6, row_hit=0.0),
        )
        assert miss > hit
