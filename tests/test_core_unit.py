"""Integration tests of the StreamCompactionUnit cost-model wrapper."""

import numpy as np
import pytest

from repro.core import build_system
from repro.errors import ConfigError, OperationError
from repro.phases import Engine, PhaseKind


@pytest.fixture
def system():
    return build_system("TX1")


def place(system, name, values):
    return system.ctx.array(name, np.asarray(values))


class TestBuildSystem:
    def test_scu_attached_by_default(self, system):
        assert system.has_scu
        assert system.require_scu() is system.scu

    def test_without_scu(self):
        baseline = build_system("GTX980", mode="gpu")
        assert not baseline.has_scu
        with pytest.raises(ConfigError):
            baseline.require_scu()

    def test_unknown_gpu(self):
        with pytest.raises(ConfigError, match="unknown GPU"):
            build_system("RTX5090")

    def test_scu_shares_gpu_hierarchy(self, system):
        assert system.scu.hierarchy is system.gpu.hierarchy


class TestOperationsThroughUnit:
    def test_bitmask_constructor(self, system):
        data = place(system, "d", [1, 5, 3, 7])
        mask, report = system.scu.bitmask_constructor(data, "ge", 5)
        assert list(mask.values) == [False, True, False, True]
        assert report.engine is Engine.SCU
        assert report.kind is PhaseKind.COMPACTION
        assert report.elements == 4
        assert report.time_s > 0
        assert report.dynamic_energy_j > 0

    def test_data_compaction(self, system):
        data = place(system, "d", [10, 20, 30])
        mask, _ = system.scu.bitmask_constructor(data, "ne", 20)
        out, report = system.scu.data_compaction(data, mask)
        assert list(out.values) == [10, 30]
        assert report.memory.transactions > 0

    def test_access_compaction(self, system):
        data = place(system, "d", np.arange(100, 108))
        idx = place(system, "i", [1, 7, 2])
        mask = system.ctx.bitmask("m", np.array([True, False, True]))
        out, report = system.scu.access_compaction(data, idx, mask)
        assert list(out.values) == [101, 102]
        assert report.elements == 3

    def test_replication_compaction(self, system):
        data = place(system, "d", [7, 8])
        count = place(system, "c", [2, 3])
        out, report = system.scu.replication_compaction(data, count)
        assert list(out.values) == [7, 7, 8, 8, 8]
        assert report.elements == 5  # occupancy follows output length

    def test_access_expansion_compaction(self, system):
        edges = place(system, "edges", [1, 2, 3, 4, 5, 5, 2, 6])
        offsets = place(system, "off", [0, 3, 5])
        degrees = place(system, "deg", [3, 2, 1])
        out, report = system.scu.access_expansion_compaction(edges, offsets, degrees)
        assert list(out.values) == [1, 2, 3, 4, 5, 5]
        assert report.elements == 6

    def test_expansion_with_reorder(self, system):
        edges = place(system, "edges", [10, 11, 12, 13])
        offsets = place(system, "off", [0])
        degrees = place(system, "deg", [4])
        perm = place(system, "perm", [3, 2, 1, 0])
        out, _ = system.scu.access_expansion_compaction(
            edges, offsets, degrees, reorder=perm
        )
        assert list(out.values) == [13, 12, 11, 10]

    def test_reorder_length_checked(self, system):
        data = place(system, "d", [1, 2, 3])
        mask = system.ctx.bitmask("m", np.array([True, True, True]))
        bad_perm = place(system, "perm", [0, 1])
        with pytest.raises(OperationError, match="reorder"):
            system.scu.data_compaction(data, mask, reorder=bad_perm)


class TestFilterAndGroupPasses:
    def test_filter_unique_pass(self, system):
        ids = place(system, "ids", [4, 4, 9, 4, 9])
        mask, report = system.scu.filter_unique_pass(ids)
        assert list(ids.values[mask.values]) == [4, 9]
        assert report.name.startswith("scu.filter_unique")
        # hash probes show up as memory traffic
        assert report.memory.transactions > 0

    def test_filter_best_cost_pass(self, system):
        ids = place(system, "ids", [3, 3, 3])
        costs = place(system, "costs", [5.0, 2.0, 4.0])
        mask, report = system.scu.filter_best_cost_pass(ids, costs)
        assert list(mask.values) == [True, True, False]
        assert report.elements == 3

    def test_grouping_pass_returns_permutation(self, system):
        rng = np.random.default_rng(0)
        dests = place(system, "dests", rng.integers(0, 1000, size=512))
        perm, report = system.scu.grouping_pass(dests)
        assert np.array_equal(np.sort(perm.values), np.arange(512))
        assert report.elements == 512

    def test_grouping_clusters_same_line_destinations(self, system):
        # 32 nodes per 128-byte line (4-byte entries).
        dests = place(system, "dests", np.array([0, 64, 1, 65, 2, 66]))
        perm, _ = system.scu.grouping_pass(dests)
        grouped = dests.values[perm.values]
        lines = grouped * 4 // 128
        changes = np.count_nonzero(lines[1:] != lines[:-1])
        assert changes == 1  # the two lines are contiguous blocks

    def test_two_step_filter_then_compact(self, system):
        """The paper's enhanced-SCU protocol end to end."""
        ids = place(system, "ef", [7, 8, 7, 9, 8, 7])
        mask, _ = system.scu.filter_unique_pass(ids)
        out, _ = system.scu.data_compaction(ids, mask, out="nf")
        assert sorted(out.values.tolist()) == [7, 8, 9]


class TestCostSanity:
    def test_bigger_op_costs_more(self, system):
        small = place(system, "small", np.arange(256))
        large = place(system, "large", np.arange(1 << 16))
        m_small, r_small = system.scu.bitmask_constructor(small, "gt", 0)
        m_large, r_large = system.scu.bitmask_constructor(large, "gt", 0)
        assert r_large.time_s > r_small.time_s
        assert r_large.dynamic_energy_j > r_small.dynamic_energy_j

    def test_wider_pipeline_faster(self):
        wide = build_system("TX1")
        wide.scu.config = wide.scu.config.with_pipeline_width(8)
        narrow = build_system("TX1")
        data_w = wide.ctx.array("d", np.arange(1 << 18))
        data_n = narrow.ctx.array("d", np.arange(1 << 18))
        _, r_wide = wide.scu.bitmask_constructor(data_w, "gt", 0)
        _, r_narrow = narrow.scu.bitmask_constructor(data_n, "gt", 0)
        assert r_wide.time_s <= r_narrow.time_s

    def test_scu_cheaper_than_gpu_for_compaction(self, system):
        """The paper's core claim at micro scale: moving N elements
        through the SCU costs less energy than a GPU kernel doing the
        same data movement."""
        from repro.gpu import KernelSpec

        n = 1 << 16
        values = np.arange(n)
        data = place(system, "d", values)
        mask = system.ctx.bitmask("m", np.ones(n, dtype=bool))
        _, scu_report = system.scu.data_compaction(data, mask)

        spec = KernelSpec(
            "gpu-compact", PhaseKind.COMPACTION, threads=n, instructions_per_thread=12
        )
        spec.load(data.addresses())
        spec.store(data.addresses())
        gpu_report = system.gpu.run(spec)
        assert scu_report.dynamic_energy_j < gpu_report.dynamic_energy_j
