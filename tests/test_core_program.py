"""Tests for SCU operation programs (the programmable-unit surface)."""

import numpy as np
import pytest

from repro.core import build_system
from repro.core.ops import expanded_indices
from repro.core.program import (
    OPERATION_SIGNATURES,
    ScuProgram,
    ScuStep,
    bfs_contraction_program,
    bfs_expansion_program,
    enhanced_bfs_contraction_program,
    pr_expansion_program,
    sssp_expansion_program,
)
from repro.errors import OperationError


@pytest.fixture
def system():
    return build_system("TX1")


def csr_buffers(system):
    """Figure 2's CSR arrays as program buffers."""
    ctx = system.ctx
    return {
        "edges": ctx.array("edges", np.array([1, 2, 3, 4, 5, 5, 2, 6])),
        "weights": ctx.array("weights", np.array([2.0, 3.0, 1.0, 1.0, 1.0, 2.0, 1.0, 2.0])),
        "indexes": ctx.array("indexes", np.array([0, 3, 5])),
        "count": ctx.array("count", np.array([3, 2, 1])),
        "costs": ctx.array("costs", np.array([0.0, 2.0, 3.0])),
        "contrib": ctx.array("contrib", np.array([0.5, 0.25, 1.0])),
    }


class TestStepValidation:
    def test_unknown_operation(self):
        with pytest.raises(OperationError, match="unknown SCU operation"):
            ScuStep("transpose", {}, "out")

    def test_missing_operand(self):
        with pytest.raises(OperationError, match="missing operands"):
            ScuStep("data_compaction", {"data": "x"}, "out")

    def test_describe(self):
        step = ScuStep("data_compaction", {"data": "ef", "bitmask": "m"}, "nf")
        assert step.describe() == "nf <- data_compaction(data=ef, bitmask=m)"

    def test_every_signature_buildable(self):
        for op, required in OPERATION_SIGNATURES.items():
            step = ScuStep(op, {name: name for name in required}, "out")
            assert step.operation == op


class TestProgramValidation:
    def test_undefined_buffer_rejected(self):
        program = ScuProgram("p").add(
            "data_compaction", "nf", data="ef", bitmask="mask"
        )
        with pytest.raises(OperationError, match="undefined buffer"):
            program.validate(["ef"])  # mask missing

    def test_intermediate_buffers_become_defined(self):
        program = enhanced_bfs_contraction_program()
        program.validate(["ef"])  # filter_mask defined by step 0

    def test_describe_lists_steps(self):
        text = sssp_expansion_program().describe()
        assert "0: ef <- expansion" in text
        assert "2: wf <- replication" in text


class TestExecution:
    def test_bfs_expansion_program(self, system):
        buffers = csr_buffers(system)
        env, reports = bfs_expansion_program().run(system.scu, buffers)
        assert list(env["ef"].values) == [1, 2, 3, 4, 5, 5]
        assert len(reports) == 1
        assert reports[0].engine.value == "scu"

    def test_bfs_contraction_program(self, system):
        buffers = {
            "ef": system.ctx.array("ef", np.array([4, 5, 5, 2, 6])),
            "mask": system.ctx.bitmask(
                "mask", np.array([True, True, False, False, True])
            ),
        }
        env, _ = bfs_contraction_program().run(system.scu, buffers)
        assert list(env["nf"].values) == [4, 5, 6]

    def test_sssp_expansion_program(self, system):
        buffers = csr_buffers(system)
        env, reports = sssp_expansion_program().run(system.scu, buffers)
        assert list(env["ef"].values) == [1, 2, 3, 4, 5, 5]
        assert list(env["ew"].values) == [2.0, 3.0, 1.0, 1.0, 1.0, 2.0]
        # replication of per-node costs by degree
        assert list(env["wf"].values) == [0.0, 0.0, 0.0, 2.0, 2.0, 3.0]
        assert len(reports) == 3

    def test_pr_expansion_program(self, system):
        buffers = csr_buffers(system)
        env, _ = pr_expansion_program().run(system.scu, buffers)
        assert list(env["wf"].values) == [0.5, 0.5, 0.5, 0.25, 0.25, 1.0]

    def test_enhanced_contraction_filters_duplicates(self, system):
        buffers = {"ef": system.ctx.array("ef", np.array([5, 5, 2, 5, 2, 6]))}
        env, reports = enhanced_bfs_contraction_program().run(system.scu, buffers)
        assert sorted(env["nf"].values.tolist()) == [2, 5, 6]
        assert len(reports) == 2

    def test_program_matches_direct_api(self, system):
        """A program and the equivalent direct calls agree bit-for-bit."""
        buffers = csr_buffers(system)
        env, _ = bfs_expansion_program().run(system.scu, buffers)
        direct, _ = system.scu.access_expansion_compaction(
            buffers["edges"], buffers["indexes"], buffers["count"], out="direct"
        )
        assert np.array_equal(env["ef"].values, direct.values)

    def test_bitmask_step_parameters(self, system):
        program = ScuProgram("p").add(
            "bitmask", "mask", data="data", comparison="gt", reference=3
        ).add("data_compaction", "out", data="data", bitmask="mask")
        buffers = {"data": system.ctx.array("d", np.array([1, 4, 2, 9]))}
        env, _ = program.run(system.scu, buffers)
        assert list(env["out"].values) == [4, 9]

    def test_run_rejects_missing_inputs(self, system):
        with pytest.raises(OperationError, match="undefined buffer"):
            bfs_expansion_program().run(system.scu, {})
