"""Tests for the simulation service (repro.serve).

Unit-level: single-flight coalescing and the bounded admission queue.
Integration-level: the HTTP surface end to end — the A/B contract that
a served report is byte-identical to an in-process run, the acceptance
scenario that eight concurrent identical cold requests simulate exactly
once, deterministic overflow/timeout/validation failures, and
drain-on-shutdown.
"""

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.algorithms import clear_run_cache, execute_request
from repro.algorithms.common import SystemMode
from repro.errors import (
    ServiceOverloadError,
    ServiceTimeoutError,
    ServiceUnavailableError,
)
from repro.obs import MetricsRegistry
from repro.request import RunRequest
from repro.serve import (
    COALESCED_METRIC,
    REJECTED_METRIC,
    SIMULATIONS_METRIC,
    ServiceConfig,
    ServiceQueue,
    SimulationService,
    SingleFlight,
    encode,
    make_server,
    run_response,
)

REQUEST_BODY = json.dumps(
    {"algorithm": "bfs", "dataset": "human", "gpu": "TX1", "mode": "scu-enhanced"}
).encode()


# ---------------------------------------------------------------------------
# SingleFlight
# ---------------------------------------------------------------------------


class TestSingleFlight:
    def test_single_caller_executes(self):
        flight = SingleFlight()
        assert flight.do("k", lambda: 41 + 1) == 42

    def test_concurrent_identical_keys_execute_once(self):
        flight = SingleFlight(registry=MetricsRegistry())
        release = threading.Event()
        calls = []

        def work():
            calls.append(None)
            release.wait(10.0)
            return "report"

        results = [None] * 4

        def runner(i):
            results[i] = flight.do("k", work)

        threads = [threading.Thread(target=runner, args=(i,)) for i in range(4)]
        for t in threads:
            t.start()
        # wait for the followers to attach, then let the leader finish
        deadline = time.time() + 10.0
        while flight.waiters("k") < 3 and time.time() < deadline:
            time.sleep(0.01)
        assert flight.waiters("k") == 3
        release.set()
        for t in threads:
            t.join(10.0)
        assert len(calls) == 1
        assert results == ["report"] * 4
        assert flight._registry.counter(COALESCED_METRIC).total() == 3

    def test_distinct_keys_do_not_coalesce(self):
        flight = SingleFlight()
        assert flight.do("a", lambda: 1) == 1
        assert flight.do("b", lambda: 2) == 2
        assert flight.waiters("a") == 0

    def test_leader_exception_is_shared(self):
        flight = SingleFlight()
        release = threading.Event()
        errors = []

        def work():
            release.wait(10.0)
            raise ValueError("boom")

        def leader():
            try:
                flight.do("k", work)
            except ValueError as error:
                errors.append(error)

        def follower():
            try:
                flight.do("k", work, timeout_s=10.0)
            except ValueError as error:
                errors.append(error)

        t1 = threading.Thread(target=leader)
        t1.start()
        while flight._calls.get("k") is None:
            time.sleep(0.01)
        t2 = threading.Thread(target=follower)
        t2.start()
        while flight.waiters("k") < 1:
            time.sleep(0.01)
        release.set()
        t1.join(10.0)
        t2.join(10.0)
        assert len(errors) == 2
        assert all(str(e) == "boom" for e in errors)

    def test_follower_timeout(self):
        flight = SingleFlight()
        release = threading.Event()
        leader = threading.Thread(
            target=lambda: flight.do("k", lambda: release.wait(10.0))
        )
        leader.start()
        while flight._calls.get("k") is None:
            time.sleep(0.01)
        with pytest.raises(ServiceTimeoutError):
            flight.do("k", lambda: None, timeout_s=0.05)
        release.set()
        leader.join(10.0)


# ---------------------------------------------------------------------------
# ServiceQueue
# ---------------------------------------------------------------------------


class TestServiceQueue:
    def test_run_returns_result(self):
        queue = ServiceQueue(workers=1, queue_depth=2)
        assert queue.run(lambda: 7) == 7
        assert queue.drain(timeout_s=5.0)

    def test_worker_exception_propagates(self):
        queue = ServiceQueue(workers=1, queue_depth=2)
        with pytest.raises(ValueError, match="boom"):
            queue.run(lambda: (_ for _ in ()).throw(ValueError("boom")))
        queue.drain(timeout_s=5.0)

    def test_overflow_rejects_deterministically(self):
        queue = ServiceQueue(workers=1, queue_depth=1, retry_after_s=2.5)
        release = threading.Event()
        queue.submit(lambda: release.wait(10.0))  # occupies the worker
        deadline = time.time() + 10.0
        while queue.inflight < 1 and time.time() < deadline:
            time.sleep(0.01)
        queue.submit(lambda: None)  # fills the single queue slot
        with pytest.raises(ServiceOverloadError) as excinfo:
            queue.submit(lambda: None)
        assert excinfo.value.retry_after_s == 2.5
        assert "admission queue full (1 waiting, limit 1)" in str(excinfo.value)
        release.set()
        assert queue.drain(timeout_s=10.0)

    def test_run_timeout(self):
        queue = ServiceQueue(workers=1, queue_depth=2)
        release = threading.Event()
        with pytest.raises(ServiceTimeoutError):
            queue.run(lambda: release.wait(10.0), timeout_s=0.05)
        release.set()
        assert queue.drain(timeout_s=10.0)

    def test_drain_refuses_new_work_and_finishes_old(self):
        queue = ServiceQueue(workers=1, queue_depth=4)
        release = threading.Event()
        done = []
        queue.submit(lambda: (release.wait(10.0), done.append(1)))
        drained = []
        drainer = threading.Thread(
            target=lambda: drained.append(queue.drain(timeout_s=10.0))
        )
        drainer.start()
        time.sleep(0.05)
        with pytest.raises(ServiceUnavailableError):
            queue.submit(lambda: None)
        release.set()
        drainer.join(10.0)
        assert drained == [True]
        assert done == [1]

    def test_drain_timeout_returns_false(self):
        queue = ServiceQueue(workers=1, queue_depth=2)
        release = threading.Event()
        queue.submit(lambda: release.wait(10.0))
        assert queue.drain(timeout_s=0.05) is False
        release.set()

    def test_gauges_track_depth_and_inflight(self):
        registry = MetricsRegistry()
        queue = ServiceQueue(workers=1, queue_depth=4, registry=registry)
        queue.run(lambda: None)
        assert registry.gauge("serve.queue.depth").value() == 0.0
        assert registry.gauge("serve.inflight").value() == 0.0
        queue.drain(timeout_s=5.0)


# ---------------------------------------------------------------------------
# HTTP integration
# ---------------------------------------------------------------------------


class GatedService(SimulationService):
    """Service whose simulations block until the test releases them."""

    def __init__(self, config=None):
        super().__init__(config)
        self.release = threading.Event()

    def _simulate(self, request, ctx=None):
        self.release.wait(30.0)
        return super()._simulate(request, ctx)


class CoalescingGatedService(SimulationService):
    """First simulation waits for ``expected`` coalesced followers.

    This makes the eight-concurrent-requests acceptance test
    deterministic: the leader's simulation cannot finish before the
    other seven requests have attached to it, so no request can ever
    slip through on the run-cache fast path instead of coalescing.
    """

    expected = 7

    def _simulate(self, request, ctx=None):
        deadline = time.time() + 30.0
        while time.time() < deadline:
            if self.registry.counter(COALESCED_METRIC).total() >= self.expected:
                break
            time.sleep(0.005)
        return super()._simulate(request, ctx)


def _post(base, body, timeout=60.0):
    request = urllib.request.Request(
        base + "/run", data=body, headers={"Content-Type": "application/json"}
    )
    with urllib.request.urlopen(request, timeout=timeout) as response:
        return response.status, response.read()


def _start(service):
    httpd = make_server(service, port=0)
    thread = threading.Thread(target=httpd.serve_forever, daemon=True)
    thread.start()
    host, port = httpd.server_address[:2]
    return httpd, f"http://{host}:{port}"


@pytest.fixture
def served():
    """A running service on a free port, torn down afterwards."""
    clear_run_cache()
    service = SimulationService(ServiceConfig(port=0))
    httpd, base = _start(service)
    yield service, base
    httpd.shutdown()
    httpd.server_close()
    service.drain(timeout_s=10.0)
    clear_run_cache()


class TestHttpService:
    def test_served_report_matches_in_process_run(self, served):
        service, base = served
        status, body = _post(base, REQUEST_BODY)
        assert status == 200
        request = RunRequest.make("bfs", "human", "TX1", "scu-enhanced")
        local = execute_request(request).report
        assert body == encode(run_response(request, local))

    def test_repeat_request_is_a_cache_hit(self, served):
        service, base = served
        _, first = _post(base, REQUEST_BODY)
        _, second = _post(base, REQUEST_BODY)
        assert first == second
        assert service.registry.counter(SIMULATIONS_METRIC).total() == 1

    def test_healthz(self, served):
        _, base = served
        with urllib.request.urlopen(base + "/healthz", timeout=10.0) as response:
            payload = json.loads(response.read())
        assert payload["status"] == "ok"
        assert payload["workers"] == 2
        assert payload["queue_capacity"] == 8

    def test_metrics_exposition(self, served):
        _, base = served
        _post(base, REQUEST_BODY)
        with urllib.request.urlopen(base + "/metrics", timeout=10.0) as response:
            text = response.read().decode()
        lines = text.splitlines()
        assert 'serve_requests{route="run"} 1.0' in lines
        assert "serve_simulations 1.0" in lines
        assert "# TYPE serve_simulations counter" in lines
        assert any(line.startswith("runner_cache") for line in lines)

    def test_unknown_route_is_404(self, served):
        _, base = served
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(base + "/nope", timeout=10.0)
        assert excinfo.value.code == 404

    def test_invalid_request_is_400(self, served):
        _, base = served
        bad = json.dumps({"algorithm": "zork"}).encode()
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post(base, bad)
        assert excinfo.value.code == 400
        payload = json.loads(excinfo.value.read())
        assert payload["error"] == "bad-request"

    def test_malformed_json_is_400(self, served):
        _, base = served
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post(base, b"{not json")
        assert excinfo.value.code == 400


class TestCoalescing:
    def test_eight_concurrent_identical_requests_simulate_once(self):
        """The acceptance scenario: 8 cold identical requests -> 1 sim."""
        clear_run_cache()
        service = CoalescingGatedService(ServiceConfig(port=0))
        httpd, base = _start(service)
        try:
            results = [None] * 8
            errors = []

            def worker(i):
                try:
                    results[i] = _post(base, REQUEST_BODY)
                except Exception as error:  # pragma: no cover - diagnostics
                    errors.append(error)

            threads = [
                threading.Thread(target=worker, args=(i,)) for i in range(8)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(60.0)
            assert not errors
            statuses = {status for status, _ in results}
            bodies = {body for _, body in results}
            assert statuses == {200}
            assert len(bodies) == 1  # byte-identical payloads
            assert service.registry.counter(SIMULATIONS_METRIC).total() == 1
            assert service.registry.counter(COALESCED_METRIC).total() == 7
        finally:
            httpd.shutdown()
            httpd.server_close()
            service.drain(timeout_s=10.0)
            clear_run_cache()


class TestOverloadAndTimeout:
    def _distinct_body(self, dataset):
        return json.dumps(
            {"algorithm": "bfs", "dataset": dataset, "gpu": "TX1", "mode": "gpu"}
        ).encode()

    def test_queue_overflow_is_a_deterministic_429(self):
        clear_run_cache()
        service = GatedService(
            ServiceConfig(port=0, workers=1, queue_depth=1, retry_after_s=3.0)
        )
        httpd, base = _start(service)
        try:
            # Fill the worker, then the one queue slot — sequenced, because
            # a submitted task counts against the admission bound until a
            # worker picks it up, so firing both at once can 429 the second.
            background = []

            def _occupy(dataset, predicate):
                thread = threading.Thread(
                    target=lambda: _post(base, self._distinct_body(dataset))
                )
                thread.start()
                background.append(thread)
                deadline = time.time() + 10.0
                while not predicate() and time.time() < deadline:
                    time.sleep(0.01)
                assert predicate()

            _occupy("human", lambda: service._queue.inflight == 1)
            _occupy("delaunay", lambda: service._queue.depth == 1)
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _post(base, self._distinct_body("kron"))
            assert excinfo.value.code == 429
            assert excinfo.value.headers["Retry-After"] == "3"
            payload = json.loads(excinfo.value.read())
            assert payload == {
                "error": "overloaded",
                "message": "admission queue full (1 waiting, limit 1)",
                "retry_after_s": 3.0,
                "status": 429,
            }
            service.release.set()
            for thread in background:
                thread.join(60.0)
        finally:
            service.release.set()
            httpd.shutdown()
            httpd.server_close()
            service.drain(timeout_s=10.0)
            clear_run_cache()

    def test_slow_request_is_a_504(self):
        clear_run_cache()
        service = GatedService(ServiceConfig(port=0, request_timeout_s=0.2))
        httpd, base = _start(service)
        try:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _post(base, REQUEST_BODY)
            assert excinfo.value.code == 504
            assert json.loads(excinfo.value.read())["error"] == "timeout"
        finally:
            service.release.set()
            httpd.shutdown()
            httpd.server_close()
            service.drain(timeout_s=10.0)
            clear_run_cache()


class TestDrain:
    def test_draining_service_rejects_new_work_and_finishes_old(self):
        clear_run_cache()
        service = GatedService(ServiceConfig(port=0))
        httpd, base = _start(service)
        try:
            results = []
            worker = threading.Thread(
                target=lambda: results.append(_post(base, REQUEST_BODY))
            )
            worker.start()
            deadline = time.time() + 10.0
            while service._queue.inflight < 1 and time.time() < deadline:
                time.sleep(0.01)
            drained = []
            drainer = threading.Thread(
                target=lambda: drained.append(service.drain(timeout_s=30.0))
            )
            drainer.start()
            time.sleep(0.05)
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _post(base, REQUEST_BODY)
            assert excinfo.value.code == 503
            assert service.health()["status"] == "draining"
            service.release.set()
            drainer.join(30.0)
            worker.join(30.0)
            assert drained == [True]
            assert [status for status, _ in results] == [200]
        finally:
            service.release.set()
            httpd.shutdown()
            httpd.server_close()
            clear_run_cache()

    def test_drain_waits_for_journal_and_spans_of_inflight_requests(self):
        """Regression: a request admitted before drain but still inside
        its handler (journaling, flushing spans) must complete before
        drain() returns — the queue being empty is not enough."""
        clear_run_cache()

        class SlowFinishService(SimulationService):
            def __init__(self, config=None):
                super().__init__(config)
                self.entered_finish = threading.Event()
                self.release_finish = threading.Event()

            def finish_request(self, ctx, **kwargs):
                self.entered_finish.set()
                self.release_finish.wait(10.0)
                super().finish_request(ctx, **kwargs)

        service = SlowFinishService(ServiceConfig(port=0))
        httpd, base = _start(service)
        try:
            results = []
            worker = threading.Thread(
                target=lambda: results.append(_post(base, REQUEST_BODY))
            )
            worker.start()
            assert service.entered_finish.wait(30.0)
            # The queue is already empty; only the handler thread is
            # still finishing.  drain() must NOT return yet.
            drained = []
            drainer = threading.Thread(
                target=lambda: drained.append(service.drain(timeout_s=30.0))
            )
            drainer.start()
            time.sleep(0.2)
            assert drainer.is_alive(), "drain returned before telemetry flushed"
            service.release_finish.set()
            drainer.join(30.0)
            worker.join(30.0)
            assert drained == [True]
            # By the time drain returned, the outcome was journaled and
            # the trace stored.
            records = service.journal.tail(None)
            assert [r["outcome"] for r in records] == ["simulated"]
            assert service.spans.trace_ids()
        finally:
            service.release_finish.set()
            httpd.shutdown()
            httpd.server_close()
            clear_run_cache()


# ---------------------------------------------------------------------------
# Per-request telemetry (PR 6)
# ---------------------------------------------------------------------------


def _post_with_headers(base, body, timeout=60.0):
    request = urllib.request.Request(
        base + "/run", data=body, headers={"Content-Type": "application/json"}
    )
    with urllib.request.urlopen(request, timeout=timeout) as response:
        return response.status, response.read(), dict(response.headers)


class TestRequestTelemetry:
    def test_request_ids_are_echoed_and_monotonic(self, served):
        _, base = served
        _, _, first = _post_with_headers(base, REQUEST_BODY)
        _, _, second = _post_with_headers(base, REQUEST_BODY)
        assert first["X-Request-Id"] == "req-000001"
        assert second["X-Request-Id"] == "req-000002"

    def test_error_responses_carry_a_request_id(self, served):
        _, base = served
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post(base, b"{not json")
        assert excinfo.value.code == 400
        assert excinfo.value.headers["X-Request-Id"] == "req-000001"
        excinfo.value.read()

    def test_debug_requests_returns_structured_records(self, served):
        service, base = served
        _post(base, REQUEST_BODY)  # cold -> simulated
        _post(base, REQUEST_BODY)  # warm -> cached
        with urllib.request.urlopen(
            base + "/debug/requests", timeout=10.0
        ) as response:
            payload = json.loads(response.read())
        assert payload["enabled"] is True
        assert payload["capacity"] == 256
        records = payload["requests"]
        assert [r["request_id"] for r in records] == ["req-000001", "req-000002"]
        assert [r["outcome"] for r in records] == ["simulated", "cached"]
        assert all(r["status"] == 200 for r in records)
        assert all(r["total_ms"] > 0 for r in records)
        assert records[0]["simulate_ms"] > 0
        assert records[0]["queue_wait_ms"] >= 0
        # the journaled cache key is the canonical request digest — the
        # same string that names the L2 entry and places the key on the
        # cluster front's hash ring
        expected = RunRequest.make("bfs", "human", "TX1", "scu-enhanced")
        assert records[0]["cache_key"] == expected.cache_digest()

    def test_debug_requests_honors_n(self, served):
        service, base = served
        for _ in range(3):
            _post(base, REQUEST_BODY)
        with urllib.request.urlopen(
            base + "/debug/requests?n=2", timeout=10.0
        ) as response:
            payload = json.loads(response.read())
        ids = [r["request_id"] for r in payload["requests"]]
        assert ids == ["req-000002", "req-000003"]

    def test_journal_is_a_bounded_ring(self):
        clear_run_cache()
        service = SimulationService(ServiceConfig(port=0, journal_size=2))
        httpd, base = _start(service)
        try:
            for _ in range(4):
                _post(base, REQUEST_BODY)
            records = service.journal.tail(None)
            assert len(records) == 2
            assert [r["request_id"] for r in records] == [
                "req-000003",
                "req-000004",
            ]
        finally:
            httpd.shutdown()
            httpd.server_close()
            service.drain(timeout_s=10.0)
            clear_run_cache()

    def test_rejected_counter_labels_overload_and_draining(self):
        registry = MetricsRegistry()
        queue = ServiceQueue(workers=1, queue_depth=1, registry=registry)
        release = threading.Event()
        queue.submit(lambda: release.wait(10.0))
        deadline = time.time() + 10.0
        while queue.inflight < 1 and time.time() < deadline:
            time.sleep(0.01)
        queue.submit(lambda: None)
        with pytest.raises(ServiceOverloadError):
            queue.submit(lambda: None)
        assert registry.counter(REJECTED_METRIC).value(reason="overload") == 1.0
        release.set()
        assert queue.drain(timeout_s=10.0)
        with pytest.raises(ServiceUnavailableError):
            queue.submit(lambda: None)
        assert registry.counter(REJECTED_METRIC).value(reason="draining") == 1.0

    def test_429_carries_wellformed_retry_after(self):
        clear_run_cache()
        service = GatedService(
            ServiceConfig(port=0, workers=1, queue_depth=1, retry_after_s=2.5)
        )
        httpd, base = _start(service)
        try:
            body = json.dumps(
                {
                    "algorithm": "bfs",
                    "dataset": "human",
                    "gpu": "TX1",
                    "mode": "gpu",
                }
            ).encode()
            thread = threading.Thread(target=lambda: _post(base, body))
            thread.start()
            deadline = time.time() + 10.0
            while service._queue.inflight < 1 and time.time() < deadline:
                time.sleep(0.01)
            second = json.dumps(
                {
                    "algorithm": "bfs",
                    "dataset": "delaunay",
                    "gpu": "TX1",
                    "mode": "gpu",
                }
            ).encode()
            t2 = threading.Thread(target=lambda: _post(base, second))
            t2.start()
            while service._queue.depth < 1 and time.time() < deadline:
                time.sleep(0.01)
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _post(
                    base,
                    json.dumps(
                        {
                            "algorithm": "bfs",
                            "dataset": "kron",
                            "gpu": "TX1",
                            "mode": "gpu",
                        }
                    ).encode(),
                )
            assert excinfo.value.code == 429
            retry_after = excinfo.value.headers["Retry-After"]
            # RFC 7231: delay-seconds must parse as a non-negative number
            assert float(retry_after) == 2.5
            excinfo.value.read()
            # the rejection is journaled (records land before the
            # response bytes leave, so no polling is needed)
            rejected = [
                r
                for r in service.journal.tail(None)
                if r["outcome"] == "rejected-429"
            ]
            assert rejected and rejected[0]["status"] == 429
            service.release.set()
            thread.join(60.0)
            t2.join(60.0)
        finally:
            service.release.set()
            httpd.shutdown()
            httpd.server_close()
            service.drain(timeout_s=10.0)
            clear_run_cache()

    def test_metrics_exposition_is_parseable_with_buckets(self, served):
        from repro.obs import check_exposition

        _, base = served
        _post(base, REQUEST_BODY)
        with urllib.request.urlopen(base + "/metrics", timeout=10.0) as response:
            text = response.read().decode()
        samples = check_exposition(text)  # conformance: TYPE lines, escapes
        names = {s.name for s in samples}
        assert "serve_latency_total_seconds_bucket" in names
        assert "serve_latency_simulate_seconds_bucket" in names
        bucket = next(
            s
            for s in samples
            if s.name == "serve_latency_total_seconds_bucket"
            and s.labels_dict().get("le") == "+Inf"
        )
        assert bucket.value == 1.0

    def test_access_log_writes_json_lines(self, tmp_path):
        clear_run_cache()
        log_path = tmp_path / "access.jsonl"
        service = SimulationService(
            ServiceConfig(port=0, access_log=str(log_path))
        )
        httpd, base = _start(service)
        try:
            _post(base, REQUEST_BODY)
            urllib.request.urlopen(base + "/healthz", timeout=10.0).read()
        finally:
            httpd.shutdown()
            httpd.server_close()
            service.drain(timeout_s=10.0)
            service.close()
            clear_run_cache()
        lines = [
            json.loads(line)
            for line in log_path.read_text().splitlines()
            if line
        ]
        run_lines = [l for l in lines if l["path"] == "/run"]
        assert run_lines and run_lines[0]["status"] == 200
        assert run_lines[0]["request_id"] == "req-000001"
        assert run_lines[0]["outcome"] == "simulated"
        assert any(l["path"] == "/healthz" for l in lines)

    def test_telemetry_off_disables_journal_but_keeps_ids(self):
        clear_run_cache()
        service = SimulationService(ServiceConfig(port=0, telemetry=False))
        httpd, base = _start(service)
        try:
            status, _, headers = _post_with_headers(base, REQUEST_BODY)
            assert status == 200
            assert headers["X-Request-Id"] == "req-000001"
            with urllib.request.urlopen(
                base + "/debug/requests", timeout=10.0
            ) as response:
                payload = json.loads(response.read())
            assert payload == {"enabled": False, "capacity": 0, "requests": []}
        finally:
            httpd.shutdown()
            httpd.server_close()
            service.drain(timeout_s=10.0)
            clear_run_cache()


# ---------------------------------------------------------------------------
# Distributed tracing over HTTP
# ---------------------------------------------------------------------------

from repro.obs.spans import SIM_SPAN_CATEGORIES  # noqa: E402

CLIENT_TRACE = "a" * 31 + "b"
CLIENT_SPAN = "c" * 15 + "d"
TRACEPARENT = f"00-{CLIENT_TRACE}-{CLIENT_SPAN}-01"


def _post_traced(base, body, traceparent, timeout=60.0):
    headers = {"Content-Type": "application/json"}
    if traceparent is not None:
        headers["traceparent"] = traceparent
    request = urllib.request.Request(base + "/run", data=body, headers=headers)
    with urllib.request.urlopen(request, timeout=timeout) as response:
        return response.status, response.read(), dict(response.headers)


def _get_trace(base, trace_id, raw=True):
    suffix = "?raw=1" if raw else ""
    with urllib.request.urlopen(
        f"{base}/debug/trace/{trace_id}{suffix}", timeout=10.0
    ) as response:
        return json.loads(response.read())


class TestTracing:
    def test_traceparent_joins_client_trace(self, served):
        _, base = served
        status, _, headers = _post_traced(base, REQUEST_BODY, TRACEPARENT)
        assert status == 200
        assert headers["X-Trace-Id"] == CLIENT_TRACE

        payload = _get_trace(base, CLIENT_TRACE)
        assert payload["trace_id"] == CLIENT_TRACE
        spans = payload["spans"]
        by_name = {}
        for span in spans:
            by_name.setdefault(span["name"], span)
        assert all(span["trace_id"] == CLIENT_TRACE for span in spans)

        # The server's root span hangs off the client's span.
        request_span = by_name["serve.request"]
        assert request_span["parent_id"] == CLIENT_SPAN
        assert request_span["status"] == "ok"
        assert request_span["attributes"]["outcome"] == "simulated"
        assert request_span["attributes"]["http.status"] == 200

        # Queue wait and simulate are children of the request span.
        assert by_name["serve.queue_wait"]["parent_id"] == request_span["span_id"]
        simulate = by_name["serve.simulate"]
        assert simulate["parent_id"] == request_span["span_id"]
        assert simulate["attributes"]["algorithm"] == "bfs"

        # Per-phase simulation spans came along, under the simulate span.
        phases = [s for s in spans if s["category"] in SIM_SPAN_CATEGORIES]
        assert len(phases) >= 1
        parent_ids = {span["span_id"] for span in spans}
        assert all(
            span["parent_id"] in parent_ids for span in phases
        )  # no orphans: every phase chains back into the tree

    def test_malformed_traceparent_mints_fresh_trace(self, served):
        _, base = served
        status, _, headers = _post_traced(base, REQUEST_BODY, "00-junk-junk-01")
        assert status == 200
        trace_id = headers["X-Trace-Id"]
        assert len(trace_id) == 32 and trace_id != CLIENT_TRACE
        payload = _get_trace(base, trace_id)
        request_span = next(
            s for s in payload["spans"] if s["name"] == "serve.request"
        )
        assert request_span["parent_id"] is None  # fresh root, no fake parent

    def test_journal_rows_join_traces(self, served):
        _, base = served
        _, _, headers = _post_traced(base, REQUEST_BODY, TRACEPARENT)
        with urllib.request.urlopen(
            base + "/debug/requests", timeout=10.0
        ) as response:
            journal = json.loads(response.read())["requests"]
        row = journal[-1]
        assert row["trace_id"] == headers["X-Trace-Id"] == CLIENT_TRACE
        request_span = next(
            s
            for s in _get_trace(base, CLIENT_TRACE)["spans"]
            if s["name"] == "serve.request"
        )
        assert row["span_id"] == request_span["span_id"]

    def test_debug_traces_lists_known_traces(self, served):
        _, base = served
        _post_traced(base, REQUEST_BODY, TRACEPARENT)
        with urllib.request.urlopen(base + "/debug/traces", timeout=10.0) as r:
            payload = json.loads(r.read())
        assert payload["enabled"] is True
        assert [t for t, _count in payload["traces"]] == [CLIENT_TRACE]
        assert payload["traces"][0][1] >= 3  # request + queue + simulate...

    def test_unknown_trace_is_404(self, served):
        _, base = served
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get_trace(base, "f" * 32)
        assert excinfo.value.code == 404
        assert json.loads(excinfo.value.read())["error"] == "unknown-trace"

    def test_chrome_form_is_default(self, served):
        _, base = served
        _post_traced(base, REQUEST_BODY, TRACEPARENT)
        doc = _get_trace(base, CLIENT_TRACE, raw=False)
        assert doc["otherData"]["trace_id"] == CLIENT_TRACE
        slices = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert any(e["name"] == "serve.request" for e in slices)

    def test_follower_links_to_leader_simulate_span(self):
        clear_run_cache()
        service = CoalescingGatedService(ServiceConfig(port=0))
        service.expected = 1
        httpd, base = _start(service)
        try:
            leader_tp = f"00-{'1' * 32}-{'1' * 16}-01"
            follower_tp = f"00-{'2' * 32}-{'2' * 16}-01"
            results = {}

            def run(name, traceparent):
                results[name] = _post_traced(base, REQUEST_BODY, traceparent)

            first = threading.Thread(target=run, args=("a", leader_tp))
            first.start()
            # Let the first request become the single-flight leader
            # (its gated simulation blocks until someone coalesces).
            time.sleep(0.3)
            second = threading.Thread(target=run, args=("b", follower_tp))
            second.start()
            first.join(60.0)
            second.join(60.0)
            assert results["a"][0] == 200 and results["b"][0] == 200
            assert results["a"][1] == results["b"][1]  # same response bytes

            spans = {
                trace: _get_trace(base, trace)["spans"]
                for trace in ("1" * 32, "2" * 32)
            }
            link_spans = [
                s
                for trace in spans.values()
                for s in trace
                if s["name"] == "serve.coalesce_wait" and s.get("links")
            ]
            assert len(link_spans) == 1  # exactly one follower
            (link,) = link_spans[0]["links"]
            # The link lands on the *other* trace's simulate span.
            leader_trace = link["trace_id"]
            assert leader_trace != link_spans[0]["trace_id"]
            leader_simulate = next(
                s for s in spans[leader_trace] if s["name"] == "serve.simulate"
            )
            assert link["span_id"] == leader_simulate["span_id"]
        finally:
            httpd.shutdown()
            httpd.server_close()
            service.drain(timeout_s=10.0)
            clear_run_cache()

    def test_isolated_worker_spans_are_stitched_in(self):
        clear_run_cache()
        service = SimulationService(ServiceConfig(port=0, run_isolated=True))
        httpd, base = _start(service)
        try:
            status, _, headers = _post_traced(base, REQUEST_BODY, TRACEPARENT)
            assert status == 200
            spans = _get_trace(base, headers["X-Trace-Id"])["spans"]
            worker_spans = [
                s for s in spans if s["process"].startswith("worker-")
            ]
            assert worker_spans  # the forked child's spans came back
            assert any(
                s["category"] in SIM_SPAN_CATEGORIES for s in worker_spans
            )
            # Worker roots hang under the parent's simulate span.
            simulate = next(s for s in spans if s["name"] == "serve.simulate")
            span_ids = {s["span_id"] for s in spans}
            assert all(
                s["parent_id"] in span_ids for s in worker_spans
            )
            assert any(
                s["parent_id"] == simulate["span_id"] for s in worker_spans
            )
        finally:
            httpd.shutdown()
            httpd.server_close()
            service.drain(timeout_s=10.0)
            clear_run_cache()

    def test_tracing_off_is_byte_identical_and_dark(self, served):
        # Traced reference response.
        _, traced_body, traced_headers = _post_traced(
            base := served[1], REQUEST_BODY, TRACEPARENT
        )
        # Same request against an untraced service, cold cache again.
        clear_run_cache()
        service = SimulationService(ServiceConfig(port=0, tracing=False))
        httpd, dark_base = _start(service)
        try:
            status, dark_body, dark_headers = _post_traced(
                dark_base, REQUEST_BODY, TRACEPARENT
            )
            assert status == 200
            assert dark_body == traced_body  # tracing never changes results
            assert "X-Trace-Id" in traced_headers
            assert "X-Trace-Id" not in dark_headers
            with urllib.request.urlopen(
                dark_base + "/debug/traces", timeout=10.0
            ) as response:
                assert json.loads(response.read()) == {
                    "enabled": False,
                    "traces": [],
                }
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _get_trace(dark_base, CLIENT_TRACE)
            assert excinfo.value.code == 404
        finally:
            httpd.shutdown()
            httpd.server_close()
            service.drain(timeout_s=10.0)
            clear_run_cache()
