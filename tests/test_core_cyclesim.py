"""Tests for the cycle-level SCU pipeline simulator, and its agreement
with the analytic throughput model used by the experiments."""

import pytest

from repro.core import SCU_GTX980, SCU_TX1
from repro.core.cyclesim import CycleSimResult, ScuPipelineSim, StageQueue
from repro.errors import ConfigError, SimulationError


class TestStageQueue:
    def test_push_pop(self):
        q = StageQueue(capacity=4)
        q.push(3)
        assert q.occupancy == 3 and not q.full
        q.pop(3)
        assert q.empty

    def test_overflow(self):
        q = StageQueue(capacity=2)
        with pytest.raises(SimulationError):
            q.push(3)

    def test_underflow(self):
        with pytest.raises(SimulationError):
            StageQueue(capacity=2).pop()

    def test_bad_capacity(self):
        with pytest.raises(ConfigError):
            StageQueue(capacity=0)


class TestPipelineSim:
    def test_zero_elements(self):
        sim = ScuPipelineSim(SCU_TX1)
        result = sim.run(0)
        assert result == CycleSimResult(0, 0, 0, 0)

    def test_negative_rejected(self):
        with pytest.raises(SimulationError):
            ScuPipelineSim(SCU_TX1).run(-1)

    def test_bad_parameters(self):
        with pytest.raises(ConfigError):
            ScuPipelineSim(SCU_TX1, memory_latency_cycles=0)
        with pytest.raises(ConfigError):
            ScuPipelineSim(SCU_TX1, memory_bandwidth_elems=0)

    def test_width1_sustains_one_element_per_cycle(self):
        """With ample memory bandwidth the TX1 pipeline streams at width."""
        sim = ScuPipelineSim(SCU_TX1, memory_latency_cycles=40, memory_bandwidth_elems=8)
        result = sim.run(20_000)
        assert result.elements_per_cycle == pytest.approx(1.0, rel=0.02)

    def test_width4_sustains_four_per_cycle(self):
        sim = ScuPipelineSim(
            SCU_GTX980, memory_latency_cycles=40, memory_bandwidth_elems=16
        )
        result = sim.run(40_000)
        assert result.elements_per_cycle == pytest.approx(4.0, rel=0.05)

    def test_memory_bound_regime(self):
        """Bandwidth below width caps throughput at the memory rate."""
        sim = ScuPipelineSim(
            SCU_GTX980, memory_latency_cycles=40, memory_bandwidth_elems=2
        )
        result = sim.run(20_000)
        assert result.elements_per_cycle == pytest.approx(2.0, rel=0.05)
        assert result.stall_fraction > 0.1

    def test_latency_hidden_by_fifo(self):
        """Table 1's deep FIFO hides even long memory latencies."""
        short = ScuPipelineSim(SCU_TX1, memory_latency_cycles=20).run(10_000)
        long = ScuPipelineSim(SCU_TX1, memory_latency_cycles=400).run(10_000)
        # Only the fill ramp differs; steady-state rate is unchanged.
        assert long.cycles - short.cycles == pytest.approx(380, abs=20)

    def test_fetch_queue_bounded_by_table1(self):
        sim = ScuPipelineSim(SCU_TX1, memory_latency_cycles=100_000 // 8)
        result = sim.run(50_000)
        assert result.peak_fetch_queue <= SCU_TX1.fifo_request_buffer_bytes // 4

    def test_reset(self):
        sim = ScuPipelineSim(SCU_TX1)
        sim.run(100)
        sim.reset()
        result = sim.run(100)
        assert result.elements == 100


class TestAnalyticModelValidation:
    """The experiments' analytic op-time must track the cycle simulator."""

    @pytest.mark.parametrize("config", [SCU_TX1, SCU_GTX980], ids=lambda c: c.name)
    def test_pipeline_bound_agreement(self, config):
        elements = 50_000
        # Ample memory: analytic model predicts elements / width cycles.
        sim = ScuPipelineSim(config, memory_latency_cycles=60, memory_bandwidth_elems=32)
        result = sim.run(elements)
        analytic_cycles = elements / config.pipeline_width
        assert result.cycles == pytest.approx(analytic_cycles, rel=0.05)

    @pytest.mark.parametrize("bandwidth", [1.0, 2.0])
    def test_memory_bound_agreement(self, bandwidth):
        elements = 40_000
        sim = ScuPipelineSim(
            SCU_GTX980, memory_latency_cycles=60, memory_bandwidth_elems=bandwidth
        )
        result = sim.run(elements)
        analytic_cycles = elements / bandwidth  # memory term dominates
        assert result.cycles == pytest.approx(analytic_cycles, rel=0.06)
