"""Tests for the accelerator-backend registry and the IRU backend.

Registry contract: one canonical mode list, typed errors for unknown
modes (ConfigError in-process, 400 at the service edge), and a
round-trip guarantee — every registered mode builds a system, runs a
tiny BFS, and serializes deterministically through the serve wire form.

A/B contract: the legacy modes (gpu, scu-basic, scu-enhanced) are
pinned against the committed bench baseline, so routing them through
the registry instead of the old ``with_scu`` boolean cannot drift a
single simulated metric.
"""

import json
import math
import threading
import urllib.error
import urllib.request
import warnings
from pathlib import Path

import numpy as np
import pytest

from repro.algorithms import clear_run_cache, execute_request
from repro.algorithms.common import SystemMode
from repro.backends import (
    IRU_CONFIGS,
    AcceleratorBackend,
    BackendCapabilities,
    IrregularAccessReorderUnit,
    IruConfig,
    all_backends,
    available_modes,
    get_backend,
    register_backend,
)
from repro.bench.record import SimMetrics
from repro.core.api import build_system
from repro.errors import ConfigError, ExperimentError, ProtocolError
from repro.gpu.config import GPU_SYSTEMS
from repro.request import RunRequest
from repro.serve import ServiceConfig, SimulationService, encode, make_server
from repro.serve.protocol import run_response

BASELINE = Path(__file__).resolve().parent.parent / "benchmarks" / "baseline_quick.json"

#: The modes the repo shipped before the registry existed; their
#: simulated metrics are pinned byte-for-byte by the committed baseline.
LEGACY_MODES = ("gpu", "scu-basic", "scu-enhanced")


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------


class TestRegistry:
    def test_available_modes_matches_enum_in_registration_order(self):
        assert available_modes() == ("gpu", "scu-basic", "scu-enhanced", "iru")
        assert set(available_modes()) == {mode.value for mode in SystemMode}

    def test_get_backend_resolves_strings_and_enums(self):
        for name in available_modes():
            backend = get_backend(name)
            assert backend.name == name
            assert backend.system_mode is SystemMode(name)
            assert get_backend(SystemMode(name)) is backend

    def test_all_backends_order_matches_available_modes(self):
        assert tuple(b.name for b in all_backends()) == available_modes()

    def test_unknown_mode_is_a_typed_config_error(self):
        with pytest.raises(ConfigError, match="unknown system mode 'warp-pool'"):
            get_backend("warp-pool")
        with pytest.raises(ConfigError, match="scu-enhanced, iru"):
            get_backend("warp-pool")

    def test_registering_a_name_the_enum_does_not_know_fails(self):
        class RogueBackend(AcceleratorBackend):
            name = "warp-pool"
            description = "not a SystemMode member"
            capabilities = BackendCapabilities()

            def describe(self):
                return self.description

        with pytest.raises(ConfigError, match="no SystemMode member"):
            register_backend(RogueBackend())
        assert "warp-pool" not in available_modes()

    def test_double_registration_fails(self):
        with pytest.raises(ConfigError, match="already registered"):
            register_backend(get_backend("gpu"))

    def test_capability_flags(self):
        assert not get_backend("gpu").capabilities.offloads_compaction
        assert get_backend("scu-basic").capabilities.offloads_compaction
        enhanced = get_backend("scu-enhanced").capabilities
        assert enhanced.offloads_compaction
        assert enhanced.filtering and enhanced.grouping
        iru = get_backend("iru").capabilities
        assert iru.reorders_accesses
        assert not iru.offloads_compaction


# ---------------------------------------------------------------------------
# Round-trip: every mode builds, runs, and serializes deterministically
# ---------------------------------------------------------------------------


class TestEveryModeRoundTrips:
    @pytest.fixture(autouse=True)
    def _fresh_cache(self):
        clear_run_cache()
        yield
        clear_run_cache()

    @pytest.mark.parametrize("mode", ["gpu", "scu-basic", "scu-enhanced", "iru"])
    def test_request_build_run_and_wire_form(self, mode):
        request = RunRequest.make("bfs", "human", "TX1", mode)
        assert RunRequest.from_dict(request.to_dict()) == request

        system = get_backend(mode).build_system("TX1")
        assert system.backend is get_backend(mode)

        report = execute_request(request).report
        assert report.system == mode
        assert report.time_s() > 0

        wire = encode(run_response(request, report))
        clear_run_cache()
        again = execute_request(request).report
        assert encode(run_response(request, again)) == wire

    def test_iru_system_has_the_unit_attached(self):
        system = get_backend("iru").build_system("TX1")
        assert system.has_iru
        assert system.gpu.reorderer is system.iru
        assert system.scu is None

    def test_scu_systems_have_no_reorderer(self):
        for mode in LEGACY_MODES:
            system = get_backend(mode).build_system("TX1")
            assert system.gpu.reorderer is None
            assert not system.has_iru


# ---------------------------------------------------------------------------
# Unknown mode at every validation edge
# ---------------------------------------------------------------------------


class TestUnknownModeEdges:
    def test_make_raises_experiment_error_listing_known_modes(self):
        with pytest.raises(ExperimentError, match="gpu, scu-basic, scu-enhanced, iru"):
            RunRequest.make("bfs", "human", "TX1", "warp-pool")

    def test_from_dict_raises_protocol_error(self):
        payload = {
            "algorithm": "bfs",
            "dataset": "human",
            "gpu": "TX1",
            "mode": "warp-pool",
        }
        with pytest.raises(ProtocolError, match="gpu, scu-basic, scu-enhanced, iru"):
            RunRequest.from_dict(payload)

    def test_service_edge_maps_unknown_mode_to_400(self):
        service = SimulationService(ServiceConfig(port=0))
        httpd = make_server(service, port=0)
        thread = threading.Thread(target=httpd.serve_forever, daemon=True)
        thread.start()
        host, port = httpd.server_address[:2]
        try:
            body = json.dumps(
                {
                    "algorithm": "bfs",
                    "dataset": "human",
                    "gpu": "TX1",
                    "mode": "warp-pool",
                }
            ).encode()
            request = urllib.request.Request(
                f"http://{host}:{port}/run",
                data=body,
                headers={"Content-Type": "application/json"},
            )
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(request, timeout=30.0)
            assert excinfo.value.code == 400
            payload = json.loads(excinfo.value.read())
            assert payload["error"] == "bad-request"
            assert "warp-pool" in payload["message"]
        finally:
            httpd.shutdown()
            httpd.server_close()
            service.drain(timeout_s=10.0)


# ---------------------------------------------------------------------------
# The deprecated with_scu shim
# ---------------------------------------------------------------------------


class TestWithScuShim:
    def test_with_scu_true_warns_and_builds_scu_enhanced(self):
        with pytest.warns(DeprecationWarning, match="with_scu"):
            system = build_system("TX1", with_scu=True)
        assert system.backend.name == "scu-enhanced"
        assert system.scu is not None

    def test_with_scu_false_warns_and_builds_baseline(self):
        with pytest.warns(DeprecationWarning, match='mode="gpu"'):
            system = build_system("TX1", with_scu=False)
        assert system.backend.name == "gpu"
        assert system.scu is None

    def test_mode_and_with_scu_together_is_an_error(self):
        with pytest.raises(ConfigError):
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", DeprecationWarning)
                build_system("TX1", mode="gpu", with_scu=True)

    def test_mode_keyword_does_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            system = build_system("TX1", mode="scu-basic")
        assert system.backend.name == "scu-basic"


# ---------------------------------------------------------------------------
# A/B pin: legacy-mode metrics are byte-identical to the committed baseline
# ---------------------------------------------------------------------------


class TestLegacyModesPinnedToBaseline:
    def test_legacy_bfs_cells_match_committed_baseline(self):
        baseline = json.loads(BASELINE.read_text())
        cells = [
            record
            for record in baseline["records"]
            if record["algorithm"] == "bfs"
            and record["dataset"] == "human"
            and record["mode"] in LEGACY_MODES
        ]
        assert len(cells) == 2 * len(LEGACY_MODES)  # both GPUs x 3 modes
        for record in cells:
            request = RunRequest.make(
                "bfs", "human", record["gpu"], record["mode"]
            )
            report = execute_request(request).report
            sim = SimMetrics.from_report(
                report, gpu_clock_hz=GPU_SYSTEMS[record["gpu"]].clock_hz
            ).as_dict()
            for name, pinned in record["sim"].items():
                got = sim[name]
                if pinned is None or (
                    isinstance(pinned, float) and math.isnan(pinned)
                ):
                    continue
                # same tolerance as the CI bench gate: absorbs numpy
                # version noise, fails on any real cost-model change
                assert got == pytest.approx(pinned, rel=1e-6), (
                    record["gpu"],
                    record["mode"],
                    name,
                )


# ---------------------------------------------------------------------------
# IRU unit model
# ---------------------------------------------------------------------------


class TestIruConfig:
    def test_shipped_configs_cover_every_gpu(self):
        assert set(IRU_CONFIGS) == set(GPU_SYSTEMS)

    def test_validation(self):
        good = IRU_CONFIGS["TX1"]
        with pytest.raises(ConfigError, match="lanes"):
            IruConfig(name="bad", clock_hz=1e9, lanes=0, window_entries=64)
        with pytest.raises(ConfigError, match="clock"):
            IruConfig(name="bad", clock_hz=0, lanes=1, window_entries=64)
        with pytest.raises(ConfigError, match="window"):
            good.with_window(1)

    def test_area_is_an_order_of_magnitude_below_the_scu(self):
        from repro.core.config import SCU_CONFIGS

        for gpu_name, config in IRU_CONFIGS.items():
            assert config.area_mm2 < SCU_CONFIGS[gpu_name].area_mm2 / 5

    def test_area_overhead_fraction(self):
        config = IRU_CONFIGS["GTX980"]
        fraction = config.area_overhead_fraction(398.0)
        assert 0 < fraction < 0.01
        with pytest.raises(ConfigError):
            config.area_overhead_fraction(0)


class TestIruReorder:
    def unit(self, window=8):
        return IrregularAccessReorderUnit(
            config=IRU_CONFIGS["TX1"].with_window(window)
        )

    def test_reorder_sorts_within_windows_only(self):
        unit = self.unit(window=4)
        addresses = np.array([7, 3, 5, 1, 20, 18, 16, 14, 2], dtype=np.int64)
        out = unit.reorder(addresses)
        # each full window drains sorted; order across windows preserved
        assert out.tolist() == [1, 3, 5, 7, 14, 16, 18, 20, 2]

    def test_reorder_preserves_the_multiset(self):
        rng = np.random.default_rng(7)
        addresses = rng.integers(0, 1 << 20, size=1000)
        out = self.unit(window=64).reorder(addresses)
        assert sorted(out.tolist()) == sorted(addresses.tolist())

    def test_sorted_streams_bypass_the_unit(self):
        unit = self.unit()
        assert unit.intercept(np.arange(100, dtype=np.int64)) is None
        assert unit.intercept(np.array([5, 5, 5], dtype=np.int64)) is None
        assert unit.intercept(np.array([3], dtype=np.int64)) is None
        assert unit.intercept(np.array([], dtype=np.int64)) is None

    def test_irregular_streams_come_back_reordered_and_counted(self):
        unit = self.unit(window=4)
        addresses = np.array([9, 1, 8, 2], dtype=np.int64)
        reordered, count = unit.intercept(addresses)
        assert reordered.tolist() == [1, 2, 8, 9]
        assert count == 4

    def test_active_mask_is_applied_before_the_buffer(self):
        unit = self.unit(window=4)
        addresses = np.array([9, 1, 8, 2], dtype=np.int64)
        mask = np.array([True, False, True, False])
        reordered, count = unit.intercept(addresses, active_mask=mask)
        assert reordered.tolist() == [8, 9]
        assert count == 2

    def test_masked_stream_that_is_sorted_bypasses(self):
        unit = self.unit(window=4)
        addresses = np.array([1, 99, 2, 98], dtype=np.int64)
        mask = np.array([True, False, True, False])
        assert unit.intercept(addresses, active_mask=mask) is None


class TestIruCosts:
    def test_exposed_time_grows_with_elements(self):
        unit = IrregularAccessReorderUnit(config=IRU_CONFIGS["TX1"])
        assert unit.exposed_time_s(0) == 0.0
        small, large = unit.exposed_time_s(1000), unit.exposed_time_s(100000)
        assert 0 < small < large
        assert small > unit.config.op_setup_s

    def test_dynamic_energy_grows_with_elements(self):
        unit = IrregularAccessReorderUnit(config=IRU_CONFIGS["GTX980"])
        assert unit.dynamic_energy_j(0) == 0.0
        assert 0 < unit.dynamic_energy_j(1000) < unit.dynamic_energy_j(100000)

    def test_static_power_scales_with_lanes(self):
        wide = IrregularAccessReorderUnit(config=IRU_CONFIGS["GTX980"])
        narrow = IrregularAccessReorderUnit(config=IRU_CONFIGS["TX1"])
        assert narrow.static_power_w < wide.static_power_w
