"""Tests for shared helpers and the error hierarchy."""

import numpy as np
import pytest

from repro.errors import (
    ConfigError,
    ExperimentError,
    GraphError,
    GraphFormatError,
    OperationError,
    ReproError,
    SimulationError,
)
from repro.utils import (
    as_float_array,
    as_int_array,
    chunked,
    format_si,
    geometric_mean,
    require,
    rng_from_seed,
)


class TestErrors:
    @pytest.mark.parametrize(
        "error",
        [GraphError, ConfigError, SimulationError, OperationError, ExperimentError],
    )
    def test_all_derive_from_repro_error(self, error):
        assert issubclass(error, ReproError)

    def test_format_error_is_graph_error(self):
        assert issubclass(GraphFormatError, GraphError)


class TestRng:
    def test_none_is_deterministic(self):
        a = rng_from_seed(None).integers(0, 100, 10)
        b = rng_from_seed(None).integers(0, 100, 10)
        assert np.array_equal(a, b)

    def test_generator_passes_through(self):
        gen = np.random.default_rng(5)
        assert rng_from_seed(gen) is gen

    def test_int_seed(self):
        a = rng_from_seed(7).random()
        b = rng_from_seed(7).random()
        assert a == b


class TestRequire:
    def test_passes_silently(self):
        require(True, "never raised")

    def test_raises_with_type(self):
        with pytest.raises(ConfigError, match="boom"):
            require(False, "boom", ConfigError)


class TestArrays:
    def test_as_int_array(self):
        arr = as_int_array([1, 2, 3])
        assert arr.dtype == np.int64

    def test_as_int_array_rejects_2d(self):
        with pytest.raises(ReproError, match="one-dimensional"):
            as_int_array(np.zeros((2, 2)))

    def test_as_float_array(self):
        arr = as_float_array([1, 2])
        assert arr.dtype == np.float64

    def test_as_float_array_rejects_2d(self):
        with pytest.raises(ReproError):
            as_float_array(np.zeros((2, 2)))


class TestChunked:
    def test_even_chunks(self):
        assert list(chunked([1, 2, 3, 4], 2)) == [[1, 2], [3, 4]]

    def test_ragged_tail(self):
        assert list(chunked([1, 2, 3], 2)) == [[1, 2], [3]]

    def test_bad_size(self):
        with pytest.raises(ReproError):
            list(chunked([1], 0))


class TestGeometricMean:
    def test_known_value(self):
        assert geometric_mean([2.0, 8.0]) == pytest.approx(4.0)

    def test_single_value(self):
        assert geometric_mean([3.0]) == pytest.approx(3.0)

    def test_empty_rejected(self):
        with pytest.raises(ReproError):
            geometric_mean([])

    def test_nonpositive_rejected(self):
        with pytest.raises(ReproError):
            geometric_mean([1.0, 0.0])


class TestFormatSi:
    @pytest.mark.parametrize(
        "value,expected",
        [(1.0, "1.00"), (1500.0, "1.50 k"), (2.5e6, "2.50 M"), (3e9, "3.00 G")],
    )
    def test_prefixes(self, value, expected):
        assert format_si(value) == expected

    def test_with_unit(self):
        assert format_si(2e6, "B/s") == "2.00 MB/s"
