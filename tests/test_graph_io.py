"""Round-trip tests for the graph file formats."""

import numpy as np
import pytest

from repro.errors import GraphFormatError
from repro.graph import (
    build_csr,
    load_dimacs,
    load_edge_list,
    load_matrix_market,
    save_dimacs,
    save_edge_list,
    save_matrix_market,
)
from repro.graph.generators import generate_road_network


@pytest.fixture
def small_graph():
    return build_csr(
        5,
        np.array([0, 0, 1, 2, 3]),
        np.array([1, 2, 3, 4, 0]),
        np.array([2.0, 3.0, 1.0, 4.0, 5.0]),
        name="tiny",
    )


class TestEdgeList:
    def test_roundtrip(self, small_graph, tmp_path):
        path = tmp_path / "g.txt"
        save_edge_list(small_graph, path)
        loaded = load_edge_list(path)
        assert loaded.num_nodes == small_graph.num_nodes
        assert np.array_equal(loaded.edges, small_graph.edges)
        assert np.array_equal(loaded.weights, small_graph.weights)

    def test_gzip_roundtrip(self, small_graph, tmp_path):
        path = tmp_path / "g.txt.gz"
        save_edge_list(small_graph, path)
        loaded = load_edge_list(path)
        assert loaded.num_edges == small_graph.num_edges

    def test_unweighted_lines_default_to_one(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1\n1 2\n")
        loaded = load_edge_list(path)
        assert np.all(loaded.weights == 1.0)

    def test_node_count_inferred_from_max_id(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 9\n")
        assert load_edge_list(path).num_nodes == 10

    def test_malformed_line_raises(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1 2 3 4\n")
        with pytest.raises(GraphFormatError):
            load_edge_list(path)

    def test_empty_file_raises(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("\n")
        with pytest.raises(GraphFormatError, match="no edges"):
            load_edge_list(path)


class TestDimacs:
    def test_roundtrip(self, small_graph, tmp_path):
        path = tmp_path / "g.gr"
        save_dimacs(small_graph, path)
        loaded = load_dimacs(path)
        assert loaded.num_nodes == small_graph.num_nodes
        assert np.array_equal(loaded.edges, small_graph.edges)

    def test_comments_skipped(self, tmp_path):
        path = tmp_path / "g.gr"
        path.write_text("c comment\np sp 2 1\na 1 2 7\n")
        loaded = load_dimacs(path)
        assert loaded.num_edges == 1
        assert loaded.weights[0] == 7.0

    def test_missing_problem_line_raises(self, tmp_path):
        path = tmp_path / "g.gr"
        path.write_text("a 1 2 7\n")
        with pytest.raises(GraphFormatError):
            load_dimacs(path)

    def test_unknown_record_raises(self, tmp_path):
        path = tmp_path / "g.gr"
        path.write_text("p sp 2 1\nz 1 2 7\n")
        with pytest.raises(GraphFormatError, match="unknown record"):
            load_dimacs(path)


class TestMatrixMarket:
    def test_roundtrip(self, small_graph, tmp_path):
        path = tmp_path / "g.mtx"
        save_matrix_market(small_graph, path)
        loaded = load_matrix_market(path)
        assert loaded.num_nodes == small_graph.num_nodes
        assert np.array_equal(loaded.edges, small_graph.edges)

    def test_symmetric_is_expanded(self, tmp_path):
        path = tmp_path / "g.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate real symmetric\n3 3 2\n1 2 1.0\n2 3 2.0\n"
        )
        loaded = load_matrix_market(path)
        assert loaded.num_edges == 4

    def test_pattern_defaults_weights(self, tmp_path):
        path = tmp_path / "g.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate pattern general\n2 2 1\n1 2\n"
        )
        loaded = load_matrix_market(path)
        assert loaded.weights[0] == 1.0

    def test_rectangular_rejected(self, tmp_path):
        path = tmp_path / "g.mtx"
        path.write_text("%%MatrixMarket matrix coordinate real general\n2 3 1\n1 2 1.0\n")
        with pytest.raises(GraphFormatError, match="square"):
            load_matrix_market(path)

    def test_missing_banner_rejected(self, tmp_path):
        path = tmp_path / "g.mtx"
        path.write_text("2 2 1\n1 2 1.0\n")
        with pytest.raises(GraphFormatError, match="banner"):
            load_matrix_market(path)


class TestLargerRoundtrip:
    def test_road_network_through_all_formats(self, tmp_path):
        g = generate_road_network(side=12, seed=3)
        for save, load, fname in (
            (save_edge_list, load_edge_list, "g.txt"),
            (save_dimacs, load_dimacs, "g.gr"),
            (save_matrix_market, load_matrix_market, "g.mtx"),
        ):
            path = tmp_path / fname
            save(g, path)
            loaded = load(path)
            assert loaded.num_nodes == g.num_nodes
            assert loaded.num_edges == g.num_edges
            assert np.array_equal(np.sort(loaded.edges), np.sort(g.edges))
