"""PageRank correctness and cost-report structure."""

import numpy as np
import pytest

from repro.algorithms import SystemMode, pagerank_reference, run_algorithm
from repro.errors import SimulationError
from repro.graph import build_csr
from repro.graph.generators import generate_collaboration, generate_kron
from repro.phases import Engine, PhaseKind

GRAPHS = {
    "kron": generate_kron(scale=8, edge_factor=8, seed=31),
    "collab": generate_collaboration(num_authors=500, num_papers=900, seed=32),
}


class TestCorrectness:
    @pytest.mark.parametrize("graph_name", sorted(GRAPHS))
    @pytest.mark.parametrize("mode", [SystemMode.GPU, SystemMode.SCU_BASIC])
    def test_matches_reference(self, graph_name, mode):
        graph = GRAPHS[graph_name]
        ranks = run_algorithm("pagerank", graph, "TX1", mode, epsilon=1e-6).result
        expected = pagerank_reference(graph, epsilon=1e-7)
        assert np.allclose(ranks, expected, rtol=1e-2, atol=1e-3)

    def test_enhanced_equals_basic(self):
        """Section 4.6: PR does not use enhanced capabilities."""
        graph = GRAPHS["kron"]
        basic = run_algorithm("pagerank", graph, "TX1", SystemMode.SCU_BASIC).result
        enhanced = run_algorithm("pagerank", graph, "TX1", SystemMode.SCU_ENHANCED).result
        assert np.allclose(basic, enhanced)

    def test_hub_outranks_leaf(self):
        # star graph: all leaves point at the hub
        n = 20
        src = np.arange(1, n)
        dst = np.zeros(n - 1, dtype=np.int64)
        graph = build_csr(n, src, dst)
        ranks = run_algorithm("pagerank", graph, "TX1", SystemMode.GPU).result
        assert ranks[0] > ranks[1]

    def test_dangling_nodes_keep_base_score(self):
        graph = build_csr(3, np.array([0]), np.array([1]))
        ranks = run_algorithm(
            "pagerank", graph, "TX1", SystemMode.GPU, alpha=0.15
        ).result
        assert ranks[2] == pytest.approx(0.15)

    def test_invalid_alpha_rejected(self):
        with pytest.raises(SimulationError, match="alpha"):
            run_algorithm("pagerank", GRAPHS["kron"], "TX1", SystemMode.GPU, alpha=1.5)

    def test_non_convergence_raises(self):
        with pytest.raises(SimulationError, match="converge"):
            run_algorithm(
                "pagerank",
                GRAPHS["kron"],
                "TX1",
                SystemMode.GPU,
                epsilon=1e-12,
                max_iterations=2,
            )


class TestReports:
    def test_expansion_is_the_compaction_phase(self):
        report = run_algorithm("pagerank", GRAPHS["kron"], "TX1", SystemMode.GPU).report
        compaction = report.select(kind=PhaseKind.COMPACTION)
        assert compaction
        assert all("expand" in p.name for p in compaction)

    def test_rank_update_has_atomics_per_edge(self):
        graph = GRAPHS["kron"]
        report = run_algorithm("pagerank", graph, "TX1", SystemMode.GPU).report
        updates = [p for p in report if p.name == "pr.rank_update"]
        assert updates
        assert all(p.elements == graph.num_edges for p in updates)

    def test_offload_moves_compaction_to_scu(self):
        report = run_algorithm("pagerank", GRAPHS["kron"], "TX1", SystemMode.SCU_BASIC).report
        scu_phases = report.select(engine=Engine.SCU)
        assert scu_phases
        gpu_compaction = [
            p for p in report.select(engine=Engine.GPU, kind=PhaseKind.COMPACTION)
        ]
        assert not gpu_compaction

    def test_compaction_fraction_in_figure1_band(self):
        report = run_algorithm("pagerank", GRAPHS["kron"], "TX1", SystemMode.GPU).report
        assert 0.1 < report.compaction_time_fraction() < 0.6
