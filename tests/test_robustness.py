"""Seed-robustness: the reproduction's claims must not hinge on one RNG draw."""

import numpy as np
import pytest

from repro.algorithms import SystemMode, bfs_reference, run_algorithm
from repro.graph.generators import generate_kron


@pytest.mark.parametrize("seed", [1, 2, 3])
class TestSeedRobustness:
    def test_bfs_enhanced_always_wins_on_kron(self, seed):
        """The headline claim holds on independently drawn Kronecker graphs."""
        graph = generate_kron(scale=11, edge_factor=12, seed=seed)
        base = run_algorithm("bfs", graph, "TX1", SystemMode.GPU).report
        enh = run_algorithm("bfs", graph, "TX1", SystemMode.SCU_ENHANCED).report
        assert base.time_s() / enh.time_s() > 1.2
        assert base.total_energy_j() / enh.total_energy_j() > 1.2

    def test_correctness_across_seeds(self, seed):
        graph = generate_kron(scale=9, edge_factor=8, seed=seed)
        for mode in SystemMode:
            dist = run_algorithm("bfs", graph, "TX1", mode).result
            expected = bfs_reference(graph, int(np.argmax(graph.out_degrees)))
            assert np.array_equal(dist, expected)
