"""Tests for JSON/CSV result export and re-import."""

import json

import pytest

from repro.errors import ExperimentError
from repro.harness import ExperimentResult, export_all, load_json, save_csv, save_json


@pytest.fixture
def result():
    r = ExperimentResult("fig9", "Normalized energy", ("algorithm", "value"))
    r.add_row("bfs", 0.25)
    r.add_row("sssp", 0.3)
    r.add_note("a note")
    return r


class TestJson:
    def test_roundtrip(self, result, tmp_path):
        path = save_json(result, tmp_path / "fig9.json")
        loaded = load_json(path)
        assert loaded.experiment_id == result.experiment_id
        assert loaded.title == result.title
        assert list(loaded.columns) == list(result.columns)
        assert loaded.rows == result.rows
        assert loaded.notes == result.notes

    def test_json_is_valid(self, result, tmp_path):
        path = save_json(result, tmp_path / "r.json")
        payload = json.loads(path.read_text())
        assert payload["rows"] == [["bfs", 0.25], ["sssp", 0.3]]

    def test_load_rejects_garbage(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(ExperimentError, match="not a valid result"):
            load_json(path)

    def test_load_rejects_missing_fields(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"title": "x"}))
        with pytest.raises(ExperimentError, match="missing field"):
            load_json(path)


class TestCsv:
    def test_csv_contents(self, result, tmp_path):
        path = save_csv(result, tmp_path / "fig9.csv")
        lines = path.read_text().splitlines()
        assert lines[0] == "# a note"
        assert lines[1] == "algorithm,value"
        assert lines[2] == "bfs,0.25"


class TestExportAll:
    def test_writes_both_formats(self, result, tmp_path):
        written = export_all({"fig9": result}, tmp_path / "out")
        names = sorted(p.name for p in written)
        assert names == ["fig9.csv", "fig9.json"]

    def test_slash_ids_sanitized(self, tmp_path):
        r = ExperimentResult("table3/4", "GPUs", ("a",))
        r.add_row("x")
        written = export_all({"table3/4": r}, tmp_path, formats=("json",))
        assert written[0].name == "table3_4.json"

    def test_json_only(self, result, tmp_path):
        written = export_all({"fig9": result}, tmp_path, formats=("json",))
        assert len(written) == 1
