"""Tests for JSON/CSV result export and re-import."""

import json

import pytest

from repro.errors import ExperimentError
from repro.harness import ExperimentResult, export_all, load_json, save_csv, save_json


@pytest.fixture
def result():
    r = ExperimentResult("fig9", "Normalized energy", ("algorithm", "value"))
    r.add_row("bfs", 0.25)
    r.add_row("sssp", 0.3)
    r.add_note("a note")
    return r


class TestJson:
    def test_roundtrip(self, result, tmp_path):
        path = save_json(result, tmp_path / "fig9.json")
        loaded = load_json(path)
        assert loaded.experiment_id == result.experiment_id
        assert loaded.title == result.title
        assert list(loaded.columns) == list(result.columns)
        assert loaded.rows == result.rows
        assert loaded.notes == result.notes

    def test_json_is_valid(self, result, tmp_path):
        path = save_json(result, tmp_path / "r.json")
        payload = json.loads(path.read_text())
        assert payload["rows"] == [["bfs", 0.25], ["sssp", 0.3]]

    def test_load_rejects_garbage(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(ExperimentError, match="not a valid result"):
            load_json(path)

    def test_load_rejects_missing_fields(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"title": "x"}))
        with pytest.raises(ExperimentError, match="missing field"):
            load_json(path)

    def test_load_reports_bad_row_with_index(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(
            json.dumps(
                {
                    "experiment_id": "fig9",
                    "title": "t",
                    "columns": ["algorithm", "value"],
                    "rows": [["bfs", 0.25], ["sssp"], ["pr", 0.5]],
                }
            )
        )
        with pytest.raises(
            ExperimentError, match=r"row 1 has 1 values, expected 2"
        ):
            load_json(path)

    def test_load_reports_non_list_row(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(
            json.dumps(
                {
                    "experiment_id": "fig9",
                    "title": "t",
                    "columns": ["a"],
                    "rows": ["oops"],
                }
            )
        )
        with pytest.raises(ExperimentError, match="row 0 has str"):
            load_json(path)


class TestRoundTrip:
    """save -> load -> CSV with mixed cell types and notes."""

    @pytest.fixture
    def mixed(self):
        r = ExperimentResult(
            "table9",
            "Mixed cells",
            ("name", "count", "ratio", "verdict"),
        )
        r.add_row("kron", 7, 0.125, "pass")
        r.add_row("human", 0, 2.5, "FAIL")
        r.add_note("first note")
        r.add_note("second note")
        return r

    def test_json_round_trip_preserves_types(self, mixed, tmp_path):
        loaded = load_json(save_json(mixed, tmp_path / "m.json"))
        assert loaded.rows == [
            ("kron", 7, 0.125, "pass"),
            ("human", 0, 2.5, "FAIL"),
        ]
        assert isinstance(loaded.rows[0][1], int)
        assert isinstance(loaded.rows[0][2], float)
        assert loaded.notes == ["first note", "second note"]

    def test_csv_of_reloaded_result_matches_original(self, mixed, tmp_path):
        direct = save_csv(mixed, tmp_path / "direct.csv").read_text()
        reloaded = load_json(save_json(mixed, tmp_path / "m.json"))
        via_json = save_csv(reloaded, tmp_path / "via.csv").read_text()
        assert direct == via_json
        lines = direct.splitlines()
        assert lines[0] == "# first note"
        assert lines[2] == "name,count,ratio,verdict"
        assert lines[3] == "kron,7,0.125,pass"


class TestCsv:
    def test_csv_contents(self, result, tmp_path):
        path = save_csv(result, tmp_path / "fig9.csv")
        lines = path.read_text().splitlines()
        assert lines[0] == "# a note"
        assert lines[1] == "algorithm,value"
        assert lines[2] == "bfs,0.25"


class TestExportAll:
    def test_writes_both_formats(self, result, tmp_path):
        written = export_all({"fig9": result}, tmp_path / "out")
        names = sorted(p.name for p in written)
        assert names == ["fig9.csv", "fig9.json"]

    def test_slash_ids_sanitized(self, tmp_path):
        r = ExperimentResult("table3/4", "GPUs", ("a",))
        r.add_row("x")
        written = export_all({"table3/4": r}, tmp_path, formats=("json",))
        assert written[0].name == "table3_4.json"

    def test_json_only(self, result, tmp_path):
        written = export_all({"fig9": result}, tmp_path, formats=("json",))
        assert len(written) == 1
