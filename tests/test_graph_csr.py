"""Unit tests for the CSR graph structure."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph import CsrGraph, build_csr


def paper_graph() -> CsrGraph:
    """The reference graph of Figure 2 of the paper (nodes A..G = 0..6)."""
    offsets = np.array([0, 3, 5, 6, 8, 8, 8, 8])
    edges = np.array([1, 2, 3, 4, 5, 5, 2, 6])
    weights = np.array([2.0, 3.0, 1.0, 1.0, 1.0, 2.0, 1.0, 2.0])
    return CsrGraph(offsets=offsets, edges=edges, weights=weights, name="fig2")


class TestConstruction:
    def test_paper_graph_shape(self):
        g = paper_graph()
        assert g.num_nodes == 7
        assert g.num_edges == 8

    def test_neighbors_of_a(self):
        g = paper_graph()
        assert list(g.neighbors(0)) == [1, 2, 3]  # A -> B, C, D

    def test_neighbor_weights_of_a(self):
        g = paper_graph()
        assert list(g.neighbor_weights(0)) == [2.0, 3.0, 1.0]

    def test_out_degrees_match_figure(self):
        g = paper_graph()
        assert list(g.out_degrees) == [3, 2, 1, 2, 0, 0, 0]

    def test_average_degree(self):
        g = paper_graph()
        assert g.average_degree == pytest.approx(8 / 7)

    def test_empty_graph(self):
        g = CsrGraph(offsets=np.array([0]), edges=np.array([]), weights=np.array([]))
        assert g.num_nodes == 0
        assert g.num_edges == 0
        assert g.average_degree == 0.0

    def test_single_node_no_edges(self):
        g = CsrGraph(offsets=np.array([0, 0]), edges=np.array([]), weights=np.array([]))
        assert g.num_nodes == 1
        assert g.out_degree(0) == 0


class TestValidation:
    def test_offsets_must_start_at_zero(self):
        with pytest.raises(GraphError, match="start at 0"):
            CsrGraph(offsets=np.array([1, 2]), edges=np.array([0]), weights=np.array([1.0]))

    def test_offsets_must_be_monotone(self):
        with pytest.raises(GraphError, match="non-decreasing"):
            CsrGraph(
                offsets=np.array([0, 2, 1]),
                edges=np.array([0, 0]),
                weights=np.array([1.0, 1.0]),
            )

    def test_terminator_must_match_edges(self):
        with pytest.raises(GraphError, match="terminator"):
            CsrGraph(
                offsets=np.array([0, 3]), edges=np.array([0]), weights=np.array([1.0])
            )

    def test_weights_must_be_parallel(self):
        with pytest.raises(GraphError, match="weights"):
            CsrGraph(
                offsets=np.array([0, 1]), edges=np.array([0]), weights=np.array([])
            )

    def test_edge_destination_range_checked(self):
        with pytest.raises(GraphError, match="out of range"):
            CsrGraph(
                offsets=np.array([0, 1]), edges=np.array([5]), weights=np.array([1.0])
            )

    def test_node_query_range_checked(self):
        g = paper_graph()
        with pytest.raises(GraphError, match="out of range"):
            g.neighbors(7)
        with pytest.raises(GraphError, match="out of range"):
            g.out_degree(-1)


class TestTransformations:
    def test_reversed_flips_every_edge(self):
        g = paper_graph()
        rev = g.reversed()
        assert rev.num_edges == g.num_edges
        # C (node 2) is reached from A and D in the original graph.
        assert sorted(rev.neighbors(2).tolist()) == [0, 3]

    def test_reversed_preserves_weights(self):
        g = paper_graph()
        rev = g.reversed()
        # Edge A->C has weight 3; the reverse graph stores it under C.
        idx = list(rev.neighbors(2)).index(0)
        assert rev.neighbor_weights(2)[idx] == 3.0

    def test_double_reverse_is_identity_topology(self):
        g = paper_graph()
        back = g.reversed().reversed()
        for node in g:
            assert sorted(back.neighbors(node).tolist()) == sorted(
                g.neighbors(node).tolist()
            )

    def test_with_unit_weights(self):
        g = paper_graph().with_unit_weights()
        assert np.all(g.weights == 1.0)

    def test_edge_sources_parallel_to_edges(self):
        g = paper_graph()
        sources = g.edge_sources()
        assert list(sources) == [0, 0, 0, 1, 1, 2, 3, 3]


class TestAddressHelpers:
    def test_edge_address_scaling(self):
        g = paper_graph()
        addrs = g.edge_address(np.array([0, 1, 2]), base=1000, elem_bytes=4)
        assert list(addrs) == [1000, 1004, 1008]

    def test_node_address_scaling(self):
        g = paper_graph()
        addrs = g.node_address(np.array([3]), base=0, elem_bytes=8)
        assert list(addrs) == [24]


class TestBuilder:
    def test_build_sorts_by_source(self):
        g = build_csr(3, np.array([2, 0, 1]), np.array([0, 1, 2]))
        assert list(g.neighbors(0)) == [1]
        assert list(g.neighbors(2)) == [0]

    def test_deduplicate_keeps_first_weight(self):
        g = build_csr(
            2,
            np.array([0, 0]),
            np.array([1, 1]),
            np.array([5.0, 9.0]),
            deduplicate=True,
        )
        assert g.num_edges == 1
        assert g.weights[0] == 5.0

    def test_symmetrize_doubles_edges(self):
        g = build_csr(3, np.array([0]), np.array([1]), symmetrize=True)
        assert g.num_edges == 2
        assert list(g.neighbors(1)) == [0]

    def test_self_loops_removed_by_default(self):
        g = build_csr(2, np.array([0, 0]), np.array([0, 1]))
        assert g.num_edges == 1

    def test_self_loops_kept_when_requested(self):
        g = build_csr(2, np.array([0]), np.array([0]), remove_self_loops=False)
        assert g.num_edges == 1
        assert list(g.neighbors(0)) == [0]

    def test_rejects_out_of_range_endpoint(self):
        with pytest.raises(GraphError):
            build_csr(2, np.array([0]), np.array([5]))

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(GraphError):
            build_csr(2, np.array([0, 1]), np.array([1]))

    def test_rejects_nonpositive_node_count(self):
        with pytest.raises(GraphError):
            build_csr(0, np.array([], dtype=np.int64), np.array([], dtype=np.int64))
