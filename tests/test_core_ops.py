"""Tests for the functional semantics of the five SCU operations (Figure 6)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    access_compaction,
    access_expansion_compaction,
    bitmask_constructor,
    data_compaction,
    expanded_indices,
    replication_compaction,
)
from repro.errors import OperationError


class TestBitmaskConstructor:
    def test_greater_than(self):
        mask = bitmask_constructor(np.array([1, 5, 3]), "gt", 2)
        assert list(mask) == [False, True, True]

    @pytest.mark.parametrize(
        "op,expected",
        [
            ("eq", [False, True, False]),
            ("ne", [True, False, True]),
            ("lt", [True, False, False]),
            ("le", [True, True, False]),
            ("gt", [False, False, True]),
            ("ge", [False, True, True]),
        ],
    )
    def test_all_comparisons(self, op, expected):
        mask = bitmask_constructor(np.array([1, 2, 3]), op, 2)
        assert list(mask) == expected

    def test_unknown_comparison_rejected(self):
        with pytest.raises(OperationError, match="unknown comparison"):
            bitmask_constructor(np.array([1]), "xor", 0)

    def test_2d_input_rejected(self):
        with pytest.raises(OperationError):
            bitmask_constructor(np.zeros((2, 2)), "eq", 0)


class TestDataCompaction:
    def test_figure6_example(self):
        # Figure 6: data [A, B, C], bitmask [1, 0, 1] -> [A, C].
        data = np.array([10, 20, 30])
        mask = np.array([True, False, True])
        assert list(data_compaction(data, mask)) == [10, 30]

    def test_order_preserved(self):
        data = np.arange(100)
        mask = data % 3 == 0
        out = data_compaction(data, mask)
        assert np.all(np.diff(out) > 0)

    def test_empty_mask_rejects_nothing(self):
        out = data_compaction(np.array([], dtype=np.int64), np.array([], dtype=bool))
        assert out.size == 0

    def test_mask_length_checked(self):
        with pytest.raises(OperationError, match="length"):
            data_compaction(np.array([1, 2]), np.array([True]))

    def test_mask_dtype_checked(self):
        with pytest.raises(OperationError, match="boolean"):
            data_compaction(np.array([1, 2]), np.array([1, 0]))


class TestAccessCompaction:
    def test_figure6_example(self):
        # Figure 6: indexes [1, 7, 2], bitmask [1, 0, 1] -> data[[1, 2]] = [B, C].
        data = np.array([100, 101, 102, 103, 104, 105, 106, 107])
        indexes = np.array([1, 7, 2])
        mask = np.array([True, False, True])
        assert list(access_compaction(data, indexes, mask)) == [101, 102]

    def test_out_of_range_index_rejected(self):
        with pytest.raises(OperationError, match="out of range"):
            access_compaction(np.array([1]), np.array([5]), np.array([True]))

    def test_masked_out_invalid_index_is_fine(self):
        # The hardware never fetches filtered entries.
        out = access_compaction(np.array([1]), np.array([5]), np.array([False]))
        assert out.size == 0


class TestReplicationCompaction:
    def test_figure6_example(self):
        # Figure 6: data [A, B, C], count [4, 2, 1], bitmask [0, 1, 1] -> [B, B, C].
        data = np.array([10, 20, 30])
        count = np.array([4, 2, 1])
        mask = np.array([False, True, True])
        assert list(replication_compaction(data, count, mask)) == [20, 20, 30]

    def test_no_mask_replicates_all(self):
        out = replication_compaction(np.array([7, 8]), np.array([2, 3]))
        assert list(out) == [7, 7, 8, 8, 8]

    def test_zero_count_drops_element(self):
        out = replication_compaction(np.array([7, 8]), np.array([0, 1]))
        assert list(out) == [8]

    def test_negative_count_rejected(self):
        with pytest.raises(OperationError, match="non-negative"):
            replication_compaction(np.array([1]), np.array([-1]))

    def test_length_mismatch_rejected(self):
        with pytest.raises(OperationError):
            replication_compaction(np.array([1, 2]), np.array([1]))


class TestAccessExpansionCompaction:
    def test_figure6_example(self):
        # Figure 6: indexes [3, 2, 1], count [5, 0, 2], bitmask [1, 0, 1]
        # -> data[3:8] ++ data[1:3].
        data = np.arange(100, 110)
        indexes = np.array([3, 2, 1])
        count = np.array([5, 0, 2])
        mask = np.array([True, False, True])
        out = access_expansion_compaction(data, indexes, count, mask)
        assert list(out) == [103, 104, 105, 106, 107, 101, 102]

    def test_csr_expansion(self):
        """With CSR offsets/degrees this is the edge-frontier gather."""
        edges = np.array([1, 2, 3, 4, 5, 5, 2, 6])  # paper Figure 2
        offsets = np.array([0, 3, 5])  # adjacency starts of nodes A, B, C
        degrees = np.array([3, 2, 1])
        out = access_expansion_compaction(edges, offsets, degrees)
        assert list(out) == [1, 2, 3, 4, 5, 5]  # edge frontier of {A, B, C}

    def test_range_out_of_bounds_rejected(self):
        with pytest.raises(OperationError, match="out of bounds"):
            access_expansion_compaction(
                np.arange(4), np.array([2]), np.array([5])
            )

    def test_empty_input(self):
        out = access_expansion_compaction(
            np.arange(4),
            np.array([], dtype=np.int64),
            np.array([], dtype=np.int64),
        )
        assert out.size == 0


class TestExpandedIndices:
    def test_docstring_example(self):
        out = expanded_indices(np.array([5, 0]), np.array([2, 3]))
        assert list(out) == [5, 6, 0, 1, 2]

    def test_zero_counts(self):
        out = expanded_indices(np.array([5, 3]), np.array([0, 0]))
        assert out.size == 0

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=50),
                st.integers(min_value=0, max_value=10),
            ),
            min_size=0,
            max_size=30,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_matches_python_loops(self, pairs):
        idx = np.array([p[0] for p in pairs], dtype=np.int64)
        cnt = np.array([p[1] for p in pairs], dtype=np.int64)
        expected = [i + k for i, c in pairs for k in range(c)]
        assert list(expanded_indices(idx, cnt)) == expected


class TestCompactionProperties:
    @given(
        st.lists(st.integers(min_value=-100, max_value=100), min_size=0, max_size=200),
        st.integers(min_value=-100, max_value=100),
    )
    @settings(max_examples=60, deadline=None)
    def test_compaction_equals_boolean_indexing(self, raw, ref):
        data = np.asarray(raw, dtype=np.int64)
        mask = bitmask_constructor(data, "gt", ref)
        out = data_compaction(data, mask)
        assert list(out) == [x for x in raw if x > ref]

    @given(st.lists(st.integers(min_value=0, max_value=5), min_size=0, max_size=100))
    @settings(max_examples=60, deadline=None)
    def test_replication_length_is_count_sum(self, counts):
        cnt = np.asarray(counts, dtype=np.int64)
        data = np.arange(cnt.size)
        assert replication_compaction(data, cnt).size == cnt.sum()
