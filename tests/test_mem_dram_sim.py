"""Tests for the event-driven banked DRAM simulator.

The key test validates the analytic DramModel's efficiency band against
this detailed simulator — the same cross-check role DramSim2 played in
the paper's methodology.
"""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.mem import GDDR5, LPDDR4, DramModel
from repro.mem.dram_sim import BankedDramSim, DramTimingParams


def sequential_trace(n, row_bytes=2048, sector=32):
    return np.arange(n, dtype=np.int64) * sector


def random_trace(n, seed=0, span=1 << 30, sector=32):
    rng = np.random.default_rng(seed)
    return rng.integers(0, span // sector, size=n) * sector


class TestConstruction:
    def test_bad_bank_count(self):
        with pytest.raises(ConfigError):
            BankedDramSim(GDDR5, num_banks=3)

    def test_bad_timing(self):
        with pytest.raises(ConfigError):
            DramTimingParams(t_rcd=0)

    def test_clock_saturates_peak(self):
        sim = BankedDramSim(GDDR5)
        # one burst (t_burst cycles) moves one sector; at full pipeline
        # the device streams exactly the configured peak.
        per_second = sim.clock_hz / sim.timing.t_burst * sim.sector_bytes
        assert per_second == pytest.approx(GDDR5.peak_bandwidth_bps)


class TestBehaviour:
    def test_sequential_stream_mostly_row_hits(self):
        sim = BankedDramSim(GDDR5)
        result = sim.process(sequential_trace(4096))
        assert result.row_hit_fraction > 0.9
        assert result.transactions == 4096

    def test_random_stream_mostly_row_misses(self):
        sim = BankedDramSim(GDDR5)
        result = sim.process(random_trace(4096))
        assert result.row_hit_fraction < 0.2

    def test_sequential_faster_than_random(self):
        seq = BankedDramSim(GDDR5).process(sequential_trace(4096))
        rnd = BankedDramSim(GDDR5).process(random_trace(4096))
        assert seq.elapsed_s < rnd.elapsed_s
        assert seq.efficiency > rnd.efficiency

    def test_empty_trace(self):
        result = BankedDramSim(LPDDR4).process(np.empty(0, dtype=np.int64))
        assert result.transactions == 0
        assert result.elapsed_s == 0.0
        assert result.achieved_bandwidth_bps == 0.0

    def test_reset(self):
        sim = BankedDramSim(GDDR5)
        sim.process(sequential_trace(64))
        sim.reset()
        result = sim.process(sequential_trace(64))
        assert result.transactions == 64

    def test_reordering_helps_interleaved_rows(self):
        # Two interleaved row streams: FR-FCFS keeps both rows open,
        # a window of 1 ping-pongs and pays precharges.
        a = np.arange(256, dtype=np.int64) * 32
        b = a + (1 << 24)
        trace = np.empty(512, dtype=np.int64)
        trace[0::2], trace[1::2] = a, b
        fast = BankedDramSim(GDDR5, reorder_window=8).process(trace)
        slow = BankedDramSim(GDDR5, reorder_window=1).process(trace)
        assert fast.elapsed_s <= slow.elapsed_s


class TestAnalyticModelValidation:
    """The analytic efficiency band must bracket the simulator."""

    @pytest.mark.parametrize("config", [GDDR5, LPDDR4], ids=lambda c: c.name)
    def test_streaming_efficiency_near_analytic(self, config):
        sim = BankedDramSim(config)
        result = sim.process(sequential_trace(8192))
        analytic = DramModel(config).effective_bandwidth(result.row_hit_fraction)
        assert result.achieved_bandwidth_bps == pytest.approx(analytic, rel=0.35)

    @pytest.mark.parametrize("config", [GDDR5, LPDDR4], ids=lambda c: c.name)
    def test_random_efficiency_near_analytic(self, config):
        sim = BankedDramSim(config)
        result = sim.process(random_trace(8192))
        analytic = DramModel(config).effective_bandwidth(result.row_hit_fraction)
        # Random traffic: the simulator lands in the analytic model's
        # derated band (banks overlap activations, so it can exceed the
        # conservative floor, but stays well under peak).
        assert 0.15 < result.efficiency < 0.9
        assert result.achieved_bandwidth_bps == pytest.approx(analytic, rel=0.8)
