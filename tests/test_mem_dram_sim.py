"""Tests for the event-driven banked DRAM simulator.

The key test validates the analytic DramModel's efficiency band against
this detailed simulator — the same cross-check role DramSim2 played in
the paper's methodology.
"""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.mem import GDDR5, LPDDR4, DramModel
from repro.mem.dram_sim import BankedDramSim, DramSimResult, DramTimingParams


def sequential_trace(n, row_bytes=2048, sector=32):
    return np.arange(n, dtype=np.int64) * sector


def random_trace(n, seed=0, span=1 << 30, sector=32):
    rng = np.random.default_rng(seed)
    return rng.integers(0, span // sector, size=n) * sector


class TestConstruction:
    def test_bad_bank_count(self):
        with pytest.raises(ConfigError):
            BankedDramSim(GDDR5, num_banks=3)

    def test_bad_timing(self):
        with pytest.raises(ConfigError):
            DramTimingParams(t_rcd=0)

    def test_clock_saturates_peak(self):
        sim = BankedDramSim(GDDR5)
        # one burst (t_burst cycles) moves one sector; at full pipeline
        # the device streams exactly the configured peak.
        per_second = sim.clock_hz / sim.timing.t_burst * sim.sector_bytes
        assert per_second == pytest.approx(GDDR5.peak_bandwidth_bps)


class TestBehaviour:
    def test_sequential_stream_mostly_row_hits(self):
        sim = BankedDramSim(GDDR5)
        result = sim.process(sequential_trace(4096))
        assert result.row_hit_fraction > 0.9
        assert result.transactions == 4096

    def test_random_stream_mostly_row_misses(self):
        sim = BankedDramSim(GDDR5)
        result = sim.process(random_trace(4096))
        assert result.row_hit_fraction < 0.2

    def test_sequential_faster_than_random(self):
        seq = BankedDramSim(GDDR5).process(sequential_trace(4096))
        rnd = BankedDramSim(GDDR5).process(random_trace(4096))
        assert seq.elapsed_s < rnd.elapsed_s
        assert seq.efficiency > rnd.efficiency

    def test_empty_trace(self):
        result = BankedDramSim(LPDDR4).process(np.empty(0, dtype=np.int64))
        assert result.transactions == 0
        assert result.elapsed_s == 0.0
        assert result.achieved_bandwidth_bps == 0.0

    def test_reset(self):
        sim = BankedDramSim(GDDR5)
        sim.process(sequential_trace(64))
        sim.reset()
        result = sim.process(sequential_trace(64))
        assert result.transactions == 64

    def test_reordering_helps_interleaved_rows(self):
        # Two interleaved row streams: FR-FCFS keeps both rows open,
        # a window of 1 ping-pongs and pays precharges.
        a = np.arange(256, dtype=np.int64) * 32
        b = a + (1 << 24)
        trace = np.empty(512, dtype=np.int64)
        trace[0::2], trace[1::2] = a, b
        fast = BankedDramSim(GDDR5, reorder_window=8).process(trace)
        slow = BankedDramSim(GDDR5, reorder_window=1).process(trace)
        assert fast.elapsed_s <= slow.elapsed_s


def _bank_state(sim):
    return [(b.open_row, b.row_hits, b.row_misses) for b in sim._banks]


def assert_equivalent(trace, *, config=GDDR5, calls=1, **kwargs):
    """Vectorized and reference replays must match byte-for-byte."""
    vec = BankedDramSim(config, **kwargs)
    ref = BankedDramSim(config, **kwargs)
    for _ in range(calls):
        rv = vec.process(trace)
        rr = ref.process_reference(trace)
        assert rv.cycles == rr.cycles
        assert rv.row_hits == rr.row_hits
        assert rv.row_misses == rr.row_misses
        assert rv.transactions == rr.transactions
    assert _bank_state(vec) == _bank_state(ref)


class TestVectorizedMatchesReference:
    """``process`` is pinned byte-identical to ``process_reference``."""

    def test_sequential(self):
        assert_equivalent(sequential_trace(2048))

    def test_random(self):
        assert_equivalent(random_trace(2048, seed=7))

    def test_empty(self):
        assert_equivalent(np.empty(0, dtype=np.int64))

    def test_single_element(self):
        assert_equivalent(np.array([4096], dtype=np.int64))

    def test_all_same_address(self):
        # One bank, one row: worst-case collision stream.
        assert_equivalent(np.full(257, 12345 * 32, dtype=np.int64))

    def test_reorder_window_sized_traces(self):
        for window in (1, 4, 8):
            trace = random_trace(window, seed=window)
            assert_equivalent(trace, reorder_window=window)

    def test_two_row_ping_pong(self):
        a = np.arange(128, dtype=np.int64) * 32
        trace = np.empty(256, dtype=np.int64)
        trace[0::2], trace[1::2] = a, a + (1 << 24)
        assert_equivalent(trace)

    def test_state_persists_across_calls(self):
        assert_equivalent(random_trace(300, seed=3), calls=3)

    @pytest.mark.parametrize("config", [GDDR5, LPDDR4], ids=lambda c: c.name)
    @pytest.mark.parametrize("seed", range(8))
    def test_fuzz(self, config, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(1, 600))
        span = int(rng.choice([1 << 12, 1 << 18, 1 << 30]))
        trace = rng.integers(0, max(span // 32, 1), size=n) * 32
        assert_equivalent(trace, config=config, calls=2)

    def test_tight_activation_limits(self):
        timing = DramTimingParams(t_rrd=20, t_faw=100)
        vec = BankedDramSim(GDDR5, timing=timing)
        ref = BankedDramSim(GDDR5, timing=timing)
        trace = random_trace(512, seed=11)
        assert vec.process(trace).cycles == ref.process_reference(trace).cycles


class TestStateLeak:
    """Per-trace timing state must not leak into the next ``process``."""

    def test_second_call_identical_to_first(self):
        sim = BankedDramSim(GDDR5)
        trace = np.full(64, 777 * 32, dtype=np.int64)  # one bank, one row
        first = sim.process(trace)
        second = sim.process(trace)
        # The second trace is all row hits (the row stayed open), so it
        # must be *cheaper* than the first — with leaked bus/activation
        # state it would start beyond the first trace's finish time.
        assert second.cycles < first.cycles
        # All-hits single-bank trace drains one burst per slot after the
        # first CAS latency: n*t_burst + t_cl exactly.
        timing = sim.timing
        assert second.cycles == 64 * timing.t_burst + timing.t_cl

    def test_reference_agrees_after_repeat(self):
        trace = random_trace(200, seed=5)
        assert_equivalent(trace, calls=2)


class TestResultValidation:
    def test_zero_peak_rejected_at_construction(self):
        with pytest.raises(ConfigError):
            DramSimResult(
                transactions=1,
                cycles=10,
                elapsed_s=1e-6,
                bytes_transferred=32,
                row_hits=0,
                row_misses=1,
                peak_bandwidth_bps=0.0,
            )

    def test_negative_peak_rejected(self):
        with pytest.raises(ConfigError):
            DramSimResult(
                transactions=0,
                cycles=0,
                elapsed_s=0.0,
                bytes_transferred=0,
                row_hits=0,
                row_misses=0,
                peak_bandwidth_bps=-1.0,
            )

    def test_efficiency_finite(self):
        result = BankedDramSim(GDDR5).process(sequential_trace(64))
        assert np.isfinite(result.efficiency)
        assert 0.0 < result.efficiency <= 1.0


class TestAnalyticModelValidation:
    """The analytic efficiency band must bracket the simulator."""

    @pytest.mark.parametrize("config", [GDDR5, LPDDR4], ids=lambda c: c.name)
    def test_streaming_efficiency_near_analytic(self, config):
        sim = BankedDramSim(config)
        result = sim.process(sequential_trace(8192))
        analytic = DramModel(config).effective_bandwidth(result.row_hit_fraction)
        assert result.achieved_bandwidth_bps == pytest.approx(analytic, rel=0.35)

    @pytest.mark.parametrize("config", [GDDR5, LPDDR4], ids=lambda c: c.name)
    def test_random_efficiency_near_analytic(self, config):
        sim = BankedDramSim(config)
        result = sim.process(random_trace(8192))
        analytic = DramModel(config).effective_bandwidth(result.row_hit_fraction)
        # Random traffic: the simulator lands in the analytic model's
        # derated band (banks overlap activations, so it can exceed the
        # conservative floor, but stays well under peak).
        assert 0.15 < result.efficiency < 0.9
        assert result.achieved_bandwidth_bps == pytest.approx(analytic, rel=0.8)
