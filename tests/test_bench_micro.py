"""Tests for the kernel-level microbenchmark suite (``bench --micro``)."""

import json

import numpy as np
import pytest

from repro.bench import (
    DRAM_TRACE_LEN,
    MICRO_KERNEL_NAMES,
    MICRO_SCHEMA_VERSION,
    MicroArtifact,
    compare_micro_artifacts,
    run_micro,
)
from repro.cli import EXIT_REGRESSION, main
from repro.errors import BenchError
from repro.obs.metrics import MetricsRegistry, global_metrics


@pytest.fixture(scope="module")
def quick_artifact():
    """One shared quick run (reps=1) for the read-only assertions."""
    return run_micro(quick=True, reps=1, tag="test")


class TestRunMicro:
    def test_covers_every_kernel(self, quick_artifact):
        assert [r.kernel for r in quick_artifact.records] == list(MICRO_KERNEL_NAMES)

    def test_dram_trace_is_pinned_at_100k_even_in_quick_mode(self, quick_artifact):
        record = quick_artifact.record_map()[("dram.replay", DRAM_TRACE_LEN)]
        assert record.size == 100_000

    def test_reference_kernels_report_speedup(self, quick_artifact):
        by_name = {r.kernel: r for r in quick_artifact.records}
        for name in ("dram.replay", "filter.unique", "group.order", "cache.lru", "cc.labels"):
            record = by_name[name]
            assert record.reference_wall is not None
            assert record.speedup is not None and record.speedup > 0
        # Coalescers have no scalar twin.
        assert by_name["coalesce.warp"].speedup is None

    def test_checksums_deterministic_across_runs(self, quick_artifact):
        again = run_micro(quick=True, reps=1, tag="again")
        for a, b in zip(quick_artifact.records, again.records):
            assert a.sim == b.sim, a.kernel

    def test_records_kernel_histograms(self):
        registry = MetricsRegistry()
        run_micro(quick=True, reps=1, tag="metrics", registry=registry)
        names = registry.names()
        for kernel in MICRO_KERNEL_NAMES:
            assert f"scu.kernel.{kernel}.seconds" in names

    def test_feeds_global_metrics_for_serve(self):
        run_micro(quick=True, reps=1, tag="global")
        rendered = global_metrics().render_prometheus()
        assert "scu_kernel_dram_replay_seconds" in rendered

    def test_bad_reps_rejected(self):
        with pytest.raises(BenchError):
            run_micro(quick=True, reps=0)


class TestMicroArtifact:
    def test_round_trip(self, quick_artifact, tmp_path):
        path = quick_artifact.save(tmp_path / "micro.json")
        loaded = MicroArtifact.load(path)
        assert loaded.tag == quick_artifact.tag
        assert loaded.quick is True
        assert [r.kernel for r in loaded.records] == list(MICRO_KERNEL_NAMES)
        for original, restored in zip(quick_artifact.records, loaded.records):
            assert original.sim == restored.sim
            assert original.wall == restored.wall
            assert original.reference_wall == restored.reference_wall

    def test_rejects_wrong_kind(self, quick_artifact, tmp_path):
        payload = quick_artifact.to_dict()
        payload["kind"] = "bench"
        path = tmp_path / "wrong.json"
        path.write_text(json.dumps(payload))
        with pytest.raises(BenchError, match="kind"):
            MicroArtifact.load(path)

    def test_rejects_unknown_schema_version(self, quick_artifact, tmp_path):
        payload = quick_artifact.to_dict()
        payload["schema_version"] = MICRO_SCHEMA_VERSION + 1
        path = tmp_path / "future.json"
        path.write_text(json.dumps(payload))
        with pytest.raises(BenchError, match="schema version"):
            MicroArtifact.load(path)

    def test_rejects_malformed_record(self, quick_artifact, tmp_path):
        payload = quick_artifact.to_dict()
        del payload["records"][0]["wall"]
        path = tmp_path / "broken.json"
        path.write_text(json.dumps(payload))
        with pytest.raises(BenchError, match="record 0"):
            MicroArtifact.load(path)

    def test_missing_file(self, tmp_path):
        with pytest.raises(BenchError, match="no such artifact"):
            MicroArtifact.load(tmp_path / "absent.json")


class TestCompareMicro:
    def test_self_compare_clean(self, quick_artifact):
        report = compare_micro_artifacts(
            quick_artifact, quick_artifact, wall_tolerance_pct=0.0
        )
        assert report.ok
        assert report.cells_compared == len(MICRO_KERNEL_NAMES)

    def test_checksum_drift_is_a_regression_in_either_direction(self, quick_artifact):
        import copy

        for delta in (+1.0, -1.0):
            drifted = copy.deepcopy(quick_artifact)
            drifted.records[0].sim["cycles"] += delta
            report = compare_micro_artifacts(
                quick_artifact, drifted, wall_tolerance_pct=0.0
            )
            assert not report.ok
            assert report.regressions[0].metric == "cycles"

    def test_missing_kernel_is_a_regression(self, quick_artifact):
        import copy

        shrunk = copy.deepcopy(quick_artifact)
        shrunk.records = shrunk.records[1:]
        report = compare_micro_artifacts(quick_artifact, shrunk)
        assert not report.ok
        assert report.regressions[0].verdict == "MISSING"

    def test_wall_slowdown_gates_only_beyond_tolerance(self, quick_artifact):
        import copy
        import dataclasses

        slower = copy.deepcopy(quick_artifact)
        slow_wall = dataclasses.replace(
            slower.records[0].wall, median_s=slower.records[0].wall.median_s * 10
        )
        slower.records[0] = dataclasses.replace(slower.records[0], wall=slow_wall)
        gated = compare_micro_artifacts(
            quick_artifact, slower, wall_tolerance_pct=50.0
        )
        assert not gated.ok
        ungated = compare_micro_artifacts(
            quick_artifact, slower, wall_tolerance_pct=0.0
        )
        assert ungated.ok


class TestCommittedBaseline:
    """The committed quick baseline is itself an acceptance artifact."""

    def test_baseline_loads_and_proves_dram_speedup(self):
        baseline = MicroArtifact.load("benchmarks/baseline_micro.json")
        assert baseline.quick is True
        record = baseline.record_map()[("dram.replay", DRAM_TRACE_LEN)]
        assert record.size == 100_000
        assert record.speedup is not None and record.speedup >= 3.0

    def test_current_checksums_match_baseline(self, quick_artifact):
        baseline = MicroArtifact.load("benchmarks/baseline_micro.json")
        report = compare_micro_artifacts(
            baseline, quick_artifact, wall_tolerance_pct=0.0
        )
        assert report.ok, [f"{f.cell}:{f.metric}" for f in report.regressions]


class TestCli:
    def test_micro_flag_writes_artifact(self, tmp_path, capsys):
        out = tmp_path / "micro.json"
        code = main(
            [
                "bench", "--micro", "--quick", "--reps", "1",
                "--tag", "clitest", "--out", str(out), "--no-progress",
            ]
        )
        assert code == 0
        artifact = MicroArtifact.load(out)
        assert artifact.tag == "clitest"
        assert "artifact written" in capsys.readouterr().out

    def test_micro_compare_regression_exits_2(self, tmp_path, capsys):
        baseline_path = tmp_path / "base.json"
        artifact = run_micro(quick=True, reps=1, tag="base")
        artifact.records[0].sim["cycles"] += 1  # poison one checksum
        artifact.save(baseline_path)
        code = main(
            [
                "bench", "--micro", "--quick", "--reps", "1",
                "--out", str(tmp_path / "cur.json"),
                "--compare", str(baseline_path),
                "--wall-tolerance", "0", "--no-progress",
            ]
        )
        assert code == EXIT_REGRESSION
        assert "REGRESSION" in capsys.readouterr().err
