#!/usr/bin/env python
"""Scenario: shortest-path navigation over a road network.

Road networks are the workload the paper's `ca` dataset represents:
low degree, huge diameter, hundreds of tiny frontiers.  That shape makes
GPU SSSP launch- and latency-bound — and is where offloading the many
small compactions to the SCU pays off even without much filtering.

The script routes between street intersections, validates against
Dijkstra, and compares the three simulated systems on both GPUs.
"""

import numpy as np

from repro.algorithms import SystemMode, run_algorithm, sssp_reference
from repro.graph.generators import generate_road_network


def main():
    city = generate_road_network(side=120, seed=2024, name="city")
    print(f"Road network: {city}")

    depot = 0  # the warehouse at one corner of the city
    reference = sssp_reference(city, depot)

    print(f"\nRouting from intersection {depot} to every reachable corner:")
    for gpu in ("GTX980", "TX1"):
        baseline = None
        for mode in SystemMode:
            outcome = run_algorithm(
                "sssp", city, gpu, mode, source=depot
            )
            report = outcome.report
            reached = ~np.isinf(reference)
            assert np.allclose(outcome.result[reached], reference[reached])
            if baseline is None:
                baseline = report.time_s()
            print(
                f"  {gpu:7s} {mode.value:13s}: {report.time_s() * 1e3:8.3f} ms "
                f"({baseline / report.time_s():4.2f}x), "
                f"energy {report.total_energy_j() * 1e3:8.3f} mJ"
            )

    # A few concrete routes, as a navigation service would report them.
    rng = np.random.default_rng(7)
    destinations = rng.choice(np.nonzero(~np.isinf(reference))[0], size=5)
    print("\nSample deliveries (travel cost from the depot):")
    for dest in destinations:
        print(f"  intersection {int(dest):6d}: cost {reference[dest]:7.1f}")


if __name__ == "__main__":
    main()
