#!/usr/bin/env python
"""Scenario: programming the SCU for a non-graph workload.

Section 3 presents the SCU as a *programmable* unit with generic
operations — stream compaction is a universal parallel primitive, not a
graph-only trick.  This script writes a small ScuProgram that cleans a
sensor-reading stream (drop invalid samples, then replicate each valid
reading by its quality weight for a weighted histogram), and compares
the offloaded run against doing the same movement with GPU kernels.
"""

import numpy as np

from repro.core import ScuProgram, build_system
from repro.gpu import KernelSpec
from repro.phases import PhaseKind


def main():
    rng = np.random.default_rng(11)
    n = 1 << 18
    readings = rng.normal(loc=20.0, scale=6.0, size=n)
    readings[rng.random(n) < 0.3] = -1.0  # sensor dropouts, marked invalid
    weights = rng.integers(1, 4, size=n)

    system = build_system("TX1")
    buffers = {
        "readings": system.ctx.array("readings", readings),
        "weights": system.ctx.array("weights", weights),
    }

    program = (
        ScuProgram("sensor.clean")
        .add("bitmask", "valid", data="readings", comparison="ge", reference=0.0)
        .add("data_compaction", "clean", data="readings", bitmask="valid")
        .add("data_compaction", "clean_weights", data="weights", bitmask="valid")
        .add("replication", "expanded", data="clean", count="clean_weights")
    )
    print(program.describe())

    env, reports = program.run(system.scu, buffers)
    clean = env["clean"].values
    expanded = env["expanded"].values
    scu_time = sum(r.time_s for r in reports)
    scu_energy = sum(r.dynamic_energy_j for r in reports)

    # Verify against plain NumPy.
    valid = readings >= 0
    assert np.array_equal(clean, readings[valid])
    assert expanded.size == int(weights[valid].sum())

    # The same data movement as GPU kernels, for comparison.
    gpu_time = gpu_energy = 0.0
    for name, data_array in (("readings", buffers["readings"]), ("expanded", env["expanded"])):
        spec = KernelSpec(
            f"gpu.compact.{name}",
            PhaseKind.COMPACTION,
            threads=data_array.size,
            instructions_per_thread=12,
            memory_efficiency=0.3,
        )
        spec.load(data_array.addresses())
        spec.store(data_array.addresses())
        report = system.gpu.run(spec)
        gpu_time += report.time_s
        gpu_energy += report.dynamic_energy_j

    print(f"\ninput samples     : {n}")
    print(f"valid samples     : {clean.size} ({100 * clean.size / n:.1f}%)")
    print(f"weighted samples  : {expanded.size}")
    print(f"\nSCU program       : {scu_time * 1e3:7.3f} ms, {scu_energy * 1e3:7.3f} mJ")
    print(f"GPU equivalent    : {gpu_time * 1e3:7.3f} ms, {gpu_energy * 1e3:7.3f} mJ")
    print(f"energy advantage  : {gpu_energy / scu_energy:4.1f}x")


if __name__ == "__main__":
    main()
