#!/usr/bin/env python
"""Scenario: influence ranking in a collaboration network.

PageRank over a co-authorship graph — the data-analytics workload the
paper's introduction motivates (the PR implementation it models comes
from a who-to-follow recommendation system).  PR is the primitive where
the SCU helps least: every node stays active each iteration, so there
is nothing to filter, and the paper reports only a small gain on the
TX1 and a small slowdown on the GTX980.  This script shows exactly
that behaviour, plus the ranking itself.
"""

import numpy as np

from repro.algorithms import SystemMode, pagerank_reference, run_algorithm
from repro.graph.generators import generate_collaboration


def main():
    network = generate_collaboration(
        num_authors=8000, num_papers=16000, seed=99, name="coauthors"
    )
    print(f"Collaboration network: {network}")

    ranks = run_algorithm(
        "pagerank", network, "TX1", SystemMode.SCU_BASIC, epsilon=1e-5
    ).result
    assert np.allclose(
        ranks, pagerank_reference(network, epsilon=1e-6), rtol=1e-2, atol=1e-3
    )

    top = np.argsort(ranks)[::-1][:10]
    print("\nTen most influential authors (PageRank, damping 0.15):")
    degrees = network.out_degrees
    for position, author in enumerate(top, 1):
        print(
            f"  {position:2d}. author {int(author):5d} "
            f"score={ranks[author]:7.3f} collaborators={int(degrees[author])}"
        )

    print("\nSystem comparison (the paper's PR story — offload, no filtering):")
    for gpu in ("GTX980", "TX1"):
        base_report = run_algorithm("pagerank", network, gpu, SystemMode.GPU).report
        scu_report = run_algorithm("pagerank", network, gpu, SystemMode.SCU_BASIC).report
        speedup = base_report.time_s() / scu_report.time_s()
        energy = base_report.total_energy_j() / scu_report.total_energy_j()
        verdict = "gain" if speedup > 1 else "slowdown"
        print(
            f"  {gpu:7s}: speedup {speedup:4.2f}x ({verdict}), "
            f"energy reduction {energy:4.2f}x"
        )


if __name__ == "__main__":
    main()
