#!/usr/bin/env python
"""Quickstart: run BFS on a GPU system with and without the SCU.

Builds the paper's Figure 2 reference graph plus a larger synthetic
graph, runs BFS on the simulated Tegra X1 in all three system variants,
and prints the cost breakdown the models produce.
"""

import numpy as np

from repro.algorithms import SystemMode, bfs_reference, run_algorithm
from repro.graph import build_csr
from repro.graph.generators import generate_kron


def figure2_graph():
    """The reference graph of the paper's Figure 2 (nodes A..G)."""
    src = np.array([0, 0, 0, 1, 1, 2, 3, 3])
    dst = np.array([1, 2, 3, 4, 5, 5, 2, 6])
    weights = np.array([2.0, 3.0, 1.0, 1.0, 1.0, 2.0, 1.0, 2.0])
    return build_csr(7, src, dst, weights, name="figure2", deduplicate=False)


def main():
    # --- the paper's toy example -----------------------------------------
    graph = figure2_graph()
    distances = run_algorithm("bfs", graph, "TX1", SystemMode.SCU_ENHANCED, source=0).result
    names = "ABCDEFG"
    print("BFS distances on the paper's Figure 2 graph (source A):")
    print("  " + "  ".join(f"{n}={d}" for n, d in zip(names, distances)))
    print()

    # --- a realistic graph: compare the three systems --------------------
    graph = generate_kron(scale=12, edge_factor=16, seed=7)
    print(f"Graph: {graph}")
    reference = bfs_reference(graph, source=0)

    baseline_time = None
    for mode in SystemMode:
        outcome = run_algorithm("bfs", graph, "TX1", mode, source=0)
        report = outcome.report
        assert np.array_equal(outcome.result, reference), "simulation must stay exact"
        elapsed_ms = report.time_s() * 1e3
        energy_mj = report.total_energy_j() * 1e3
        if mode is SystemMode.GPU:
            baseline_time = report.time_s()
        print(
            f"  {mode.value:13s}: {elapsed_ms:7.3f} ms "
            f"({baseline_time / report.time_s():4.2f}x), "
            f"{energy_mj:7.3f} mJ, "
            f"compaction share {100 * report.compaction_time_fraction():4.1f}%"
        )
    print()
    print("The enhanced SCU wins by filtering duplicate frontier entries")
    print("before the GPU ever sees them (Section 4 of the paper).")


if __name__ == "__main__":
    main()
