#!/usr/bin/env python
"""Reproduce every table and figure of the paper's evaluation section.

Runs the full experiment grid (3 primitives x 6 datasets x 2 GPU
systems x 3 system variants) and prints each artifact next to the
paper's reported numbers.  Takes a couple of minutes; pass ``--quick``
for a three-dataset subset.
"""

import sys
import time

from repro.harness import EXPERIMENTS, render_table, run_experiment

QUICK_DATASETS = ("delaunay", "human", "kron")
SWEEPING = {"fig1", "fig9", "fig10", "fig11", "fig12", "fig13", "headline"}


def main(argv):
    quick = "--quick" in argv
    kwargs = {}
    start = time.time()
    for experiment_id in EXPERIMENTS:
        per_experiment = dict(kwargs)
        if quick and experiment_id in SWEEPING:
            per_experiment["datasets"] = QUICK_DATASETS
        result = run_experiment(experiment_id, **per_experiment)
        print(render_table(result))
        print()
    print(f"Reproduced {len(EXPERIMENTS)} artifacts in {time.time() - start:.0f}s.")


if __name__ == "__main__":
    main(sys.argv[1:])
