#!/usr/bin/env python
"""Scenario: architecture design-space exploration of the SCU.

An architect sizing an SCU for a new GPU asks: how wide should the
pipeline be, and how large the filtering hash?  This script sweeps both
knobs (Section 5.1's scalability parameters) on a duplicate-heavy
Kronecker workload and prints the speedup / area Pareto points.
"""

from repro.algorithms import SystemMode, run_algorithm
from repro.core import SCU_CONFIGS
from repro.graph import load_dataset


def sweep_pipeline_width(graph, gpu="TX1"):
    print(f"\nPipeline width sweep (BFS on {graph.name}, {gpu}):")
    print(f"  {'width':>5s} {'time(ms)':>9s} {'energy(mJ)':>11s} {'area(mm2)':>10s}")
    base = run_algorithm("bfs", graph, gpu, SystemMode.GPU).report
    for width in (1, 2, 4, 8):
        config = SCU_CONFIGS[gpu].with_pipeline_width(width)
        report = run_algorithm(
            "bfs", graph, gpu, SystemMode.SCU_ENHANCED, scu_config=config
        ).report
        print(
            f"  {width:5d} {report.time_s() * 1e3:9.3f} "
            f"{report.total_energy_j() * 1e3:11.3f} {config.area_mm2:10.2f}"
            f"   ({base.time_s() / report.time_s():4.2f}x vs GPU)"
        )


def sweep_hash_size(graph, gpu="TX1"):
    print(f"\nFiltering-hash size sweep (BFS on {graph.name}, {gpu}):")
    print(f"  {'scale':>6s} {'bfs hash':>10s} {'time(ms)':>9s} {'gpu instr':>10s}")
    for scale in (0.25, 0.5, 1.0, 2.0, 4.0):
        config = SCU_CONFIGS[gpu].with_hash_scale(scale)
        report = run_algorithm(
            "bfs", graph, gpu, SystemMode.SCU_ENHANCED, scu_config=config
        ).report
        from repro.phases import Engine

        print(
            f"  {scale:6.2f} {config.filter_bfs_hash.capacity_bytes // 1024:9d}K "
            f"{report.time_s() * 1e3:9.3f} "
            f"{report.instructions(engine=Engine.GPU):10d}"
        )
    print("  (larger hashes catch more duplicates -> less residual GPU work,")
    print("   until the table outgrows the L2 — the paper's Table 2 trade-off)")


def main():
    graph = load_dataset("kron")
    print(f"Workload: {graph} (heavy-hub Kronecker, worst-case duplicates)")
    sweep_pipeline_width(graph)
    sweep_hash_size(graph)


if __name__ == "__main__":
    main()
