"""Ablation — filtering hash-table size (Table 2's second knob).

Larger tables catch more duplicates (fewer collision-overwrites) but
pressure the L2; the paper sizes them at roughly the node count of its
graphs.  The sweep measures duplicate-removal rate directly.
"""

import numpy as np

from repro.core import HashTableConfig, duplicates_removed_fraction, filter_unique
from repro.graph import load_dataset

from .conftest import run_once

SCALES = (0.0625, 0.25, 1.0, 4.0)
BASE_ENTRIES = 2048  # TX1 BFS table at PAPER_SCALE


def test_ablation_filter_hash_size(benchmark):
    graph = load_dataset("kron")
    # A representative duplicate-heavy stream: the full edge array's
    # destinations (what one big expansion would push through the SCU).
    stream = graph.edges
    duplicate_rate = 1.0 - np.unique(stream).size / stream.size

    def sweep():
        removed = {}
        for scale in SCALES:
            entries = max(1, int(BASE_ENTRIES * scale))
            table = HashTableConfig("ablate", entries * 4, 16, 4)
            keep = filter_unique(stream, table)
            removed[scale] = duplicates_removed_fraction(keep)
        return removed

    removed = run_once(benchmark, sweep)
    print()
    print("== ablation: filtering hash size (kron edge stream) ==")
    print(f"  stream duplicate rate: {100 * duplicate_rate:.1f}%")
    for scale in SCALES:
        entries = int(BASE_ENTRIES * scale)
        print(
            f"  entries={entries:6d}: removed {100 * removed[scale]:5.1f}% of stream"
        )
    # Bigger tables never remove fewer duplicates.
    ordered = [removed[s] for s in SCALES]
    assert ordered == sorted(ordered)
    # Nothing legitimate is ever removed: the fraction cannot exceed the
    # true duplicate rate.
    assert all(r <= duplicate_rate + 1e-9 for r in ordered)
    # At the paper-scale size (entries ~ 1/8 of the node count, the
    # same pressure ratio as the paper's kron vs its 33k-entry table)
    # half the stream is already removed; 4x catches most of it.
    assert removed[1.0] > 0.45 * duplicate_rate
    assert removed[4.0] > 0.75 * duplicate_rate
