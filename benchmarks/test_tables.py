"""Tables 1-4 — configuration artifacts, rendered and self-checked."""

import pytest

from repro.harness import (
    render_table,
    table1_scu_parameters,
    table2_scu_scalability,
    table3_table4_gpu_parameters,
)

from .conftest import run_once


def test_table1_scu_parameters(benchmark):
    result = run_once(benchmark, table1_scu_parameters)
    print()
    print(render_table(result))
    rows = dict(result.rows)
    assert rows["Vector Buffering"] == "5 KB"
    assert rows["FIFO Requests Buffer"] == "38 KB"
    assert rows["Hash Request Buffer"] == "18 KB"
    assert rows["Coalescing Unit"] == "32 in-flight requests, 4-merge"


def test_table2_scu_scalability(benchmark):
    result = run_once(benchmark, table2_scu_scalability)
    print()
    print(render_table(result))
    records = {r[0]: (r[1], r[2]) for r in result.rows}
    assert records["Pipeline Width"] == ("4 elements/cycle", "1 elements/cycle")
    assert records["Filtering BFS Hash"][0].startswith("1 MB")
    assert records["Filtering BFS Hash"][1].startswith("132 KB")
    assert records["Grouping SSSP Hash"][0].startswith("1.2 MB")
    assert records["Grouping SSSP Hash"][1].startswith("144 KB")


def test_table3_table4_gpu_parameters(benchmark):
    result = run_once(benchmark, table3_table4_gpu_parameters)
    print()
    print(render_table(result))
    records = {r[0]: (r[1], r[2]) for r in result.rows}
    assert records["GPU, Frequency"] == ("GTX980, 1.27GHz", "TX1, 1.00GHz")
    assert "16" in records["Streaming Multiprocessors"][0]
    assert "2 (256 threads)" in records["Streaming Multiprocessors"][1]
    assert "GDDR5" in records["Main Memory"][0]
    assert "LPDDR4" in records["Main Memory"][1]
