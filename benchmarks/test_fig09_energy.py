"""Figure 9 — normalized energy of the SCU system vs the GPU baseline."""

from repro.harness import expectations_for, fig9_normalized_energy, render_table

from .conftest import check_expectations, run_once


def test_fig9_normalized_energy(benchmark, sweep_kwargs):
    result = run_once(benchmark, fig9_normalized_energy, **sweep_kwargs)
    print()
    print(render_table(result))
    # Shared paper targets: every BFS/SSSP cell saves energy, and BFS
    # saves more than PR (fig9.* in the expectations table).
    check_expectations(expectations_for("fig9"), result)
    # The GPU/SCU split must reassemble to the total on every row.
    for row in result.rows:
        algorithm, gpu, dataset, normalized_total, gpu_share, scu_share = row
        assert abs((gpu_share + scu_share) - normalized_total) < 1e-6
