"""Figure 9 — normalized energy of the SCU system vs the GPU baseline."""

from repro.harness import fig9_normalized_energy, render_table

from .conftest import run_once


def test_fig9_normalized_energy(benchmark, sweep_kwargs):
    result = run_once(benchmark, fig9_normalized_energy, **sweep_kwargs)
    print()
    print(render_table(result))
    # The SCU system saves energy on every BFS/SSSP configuration.
    for row in result.rows:
        algorithm, gpu, dataset, normalized_total, gpu_share, scu_share = row
        if algorithm in ("bfs", "sssp"):
            assert normalized_total < 1.0, row
        # The split must reassemble to the total.
        assert abs((gpu_share + scu_share) - normalized_total) < 1e-6
    # Paper shape: energy savings exceed the speedups; BFS saves the most.
    bfs = [r[3] for r in result.rows if r[0] == "bfs"]
    pr = [r[3] for r in result.rows if r[0] == "pagerank"]
    assert sum(bfs) / len(bfs) < sum(pr) / len(pr)
