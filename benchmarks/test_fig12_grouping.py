"""Figure 12 — memory-coalescing improvement from the grouping operation."""

from repro.harness import expectations_for, fig12_grouping_coalescing, render_table

from .conftest import check_expectations, run_once


def test_fig12_grouping_coalescing(benchmark, sweep_kwargs):
    result = run_once(benchmark, fig12_grouping_coalescing, **sweep_kwargs)
    print()
    print(render_table(result))
    # Shared paper targets: positive improvement on every dataset, and
    # an average in the paper's 27% order of magnitude (fig12.*).
    check_expectations(expectations_for("fig12"), result)
