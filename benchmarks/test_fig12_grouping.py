"""Figure 12 — memory-coalescing improvement from the grouping operation."""

from repro.harness import fig12_grouping_coalescing, render_table

from .conftest import run_once


def test_fig12_grouping_coalescing(benchmark, sweep_kwargs):
    result = run_once(benchmark, fig12_grouping_coalescing, **sweep_kwargs)
    print()
    print(render_table(result))
    per_dataset = [r for r in result.rows if r[0] != "AVG"]
    average = [r for r in result.rows if r[0] == "AVG"][0][1]
    # Grouping improves coalescing on every dataset (paper Figure 12).
    for name, pct in per_dataset:
        assert pct > 0.0, (name, pct)
    # Paper: 27% average improvement; accept the same order of magnitude.
    assert 10.0 < average < 60.0
