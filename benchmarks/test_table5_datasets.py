"""Table 5 — benchmark dataset characteristics (generated analogs)."""

from repro.graph import graph_stats, load_dataset
from repro.harness import render_table, table5_datasets

from .conftest import run_once


def test_table5_datasets(benchmark, bench_datasets):
    result = run_once(benchmark, table5_datasets, datasets=bench_datasets)
    print()
    print(render_table(result))
    assert len(result.rows) == len(bench_datasets)


def test_dataset_structural_classes(benchmark, bench_datasets):
    """The analogs preserve the paper datasets' structural character."""

    def collect():
        return {name: graph_stats(load_dataset(name)) for name in bench_datasets}

    stats = run_once(benchmark, collect)
    if "human" in stats:
        # human: extreme average degree (paper: 2214, the densest graph)
        others = [s.average_degree for n, s in stats.items() if n not in ("human", "msdoor")]
        assert stats["human"].average_degree > max(others)
    if "kron" in stats:
        # kron: heavy-tailed hubs
        assert stats["kron"].gini_degree > 0.6
    if "ca" in stats:
        # ca: near-uniform low degree
        assert stats["ca"].gini_degree < 0.2
        assert stats["ca"].average_degree < 6
    if "msdoor" in stats:
        # msdoor: dense regular mesh, degree close to the paper's 97.3
        assert 70 < stats["msdoor"].average_degree < 125
        assert stats["msdoor"].gini_degree < 0.3
