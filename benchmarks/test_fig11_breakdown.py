"""Figure 11 — basic-SCU vs enhanced-SCU speedup/energy breakdown."""

from repro.harness import expectations_for, fig11_basic_vs_enhanced, render_table

from .conftest import check_expectations, run_once


def test_fig11_basic_vs_enhanced(benchmark, sweep_kwargs):
    result = run_once(benchmark, fig11_basic_vs_enhanced, **sweep_kwargs)
    print()
    print(render_table(result))
    # Shared paper targets: the basic SCU alone already wins on every
    # cell (paper: ~1.5x speedup, ~2x energy reduction) — fig11.*.
    check_expectations(expectations_for("fig11"), result)
    for row in result.rows:
        algorithm, gpu, s_basic, s_enh, e_basic, e_enh = row
        # Filtering/grouping adds on top of the basic design.
        assert s_enh > s_basic * 0.95, row
        assert e_enh > e_basic, row
        # Energy reductions exceed speedups (the SCU's active power is
        # two orders of magnitude below the SM array's).
        assert e_enh > s_enh * 0.9, row
