"""The abstract's headline numbers: speedups, energy savings, area.

Numeric targets come from the shared expectations table
(:mod:`repro.harness.expectations`) — the same source of truth the
``repro bench`` fidelity scoreboard checks — so the paper's numbers
live in exactly one place.  Only *relational* shape assertions (who
beats whom) stay inline.
"""

from repro.harness import expectations_for, headline_value, headline_summary, render_table

from .conftest import run_once


def test_headline_summary(benchmark, sweep_kwargs):
    result = run_once(benchmark, headline_summary, **sweep_kwargs)
    print()
    print(render_table(result))

    # Every headline target of the shared expectations table holds.
    for expectation in expectations_for("headline"):
        measured = expectation.extract(result)
        assert expectation.check(measured), (
            expectation.id,
            measured,
            expectation.band_text(),
        )

    # Relational shape: the low-power TX1 gains more than the GTX980
    # (paper: 2.32x vs 1.37x).
    assert headline_value(result, "speedup", "TX1") > headline_value(
        result, "speedup", "GTX980"
    )
