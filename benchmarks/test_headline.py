"""The abstract's headline numbers: speedups, energy savings, area."""

from repro.harness import headline_summary, render_table

from .conftest import run_once


def test_headline_summary(benchmark, sweep_kwargs):
    result = run_once(benchmark, headline_summary, **sweep_kwargs)
    print()
    print(render_table(result))
    records = {(r[0], r[1]): r[2] for r in result.rows}

    def value(metric, gpu):
        return float(records[(metric, gpu)].rstrip("x%"))

    # Speedups: both systems gain; the low-power TX1 gains more
    # (paper: 1.37x GTX980, 2.32x TX1).
    assert value("speedup", "GTX980") > 1.15
    assert value("speedup", "TX1") > 1.5
    assert value("speedup", "TX1") > value("speedup", "GTX980")

    # Energy savings are substantial on both (paper: 84.7% / 69%).
    assert value("energy_savings", "GTX980") > 50
    assert value("energy_savings", "TX1") > 45

    # Area overhead reproduces the synthesis numbers (3.3% / 4.1%).
    assert abs(value("area_overhead", "GTX980") - 3.3) < 0.5
    assert abs(value("area_overhead", "TX1") - 4.1) < 0.5

    # Filtering removes most of the GPU workload (paper: 71-76%).
    for algorithm in ("bfs", "sssp"):
        for gpu in ("GTX980", "TX1"):
            assert value(f"gpu_instr_reduction_{algorithm}", gpu) > 55
