"""Figure 10 — normalized execution time of the SCU system."""

from repro.harness import expectations_for, fig10_normalized_time, render_table

from .conftest import check_expectations, run_once


def test_fig10_normalized_time(benchmark, sweep_kwargs):
    result = run_once(benchmark, fig10_normalized_time, **sweep_kwargs)
    print()
    print(render_table(result))
    # Shared paper targets: every traversal cell speeds up, and PR on
    # GTX980 is the paper's one slowdown case (fig10.* expectations).
    check_expectations(expectations_for("fig10"), result)
    for row in result.rows:
        algorithm, gpu, dataset, normalized_total, gpu_share, scu_share = row
        # PR sits near 1.0: small gain on TX1, small slowdown on GTX980.
        if algorithm == "pagerank":
            assert 0.6 < normalized_total < 1.4, row
        assert abs((gpu_share + scu_share) - normalized_total) < 1e-6

    def average(algorithm, gpu):
        vals = [r[3] for r in result.rows if r[0] == algorithm and r[1] == gpu]
        return sum(vals) / len(vals)

    # TX1 gains more than GTX980 on the traversal primitives (paper:
    # 2.32x vs 1.37x average speedup).
    assert average("bfs", "TX1") < average("bfs", "GTX980") + 0.15
