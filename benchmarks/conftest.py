"""Shared configuration for the benchmark suite.

Each benchmark reproduces one table or figure.  Simulation runs are
memoized inside :mod:`repro.harness.experiments`, so the expensive sweep
is paid once per session no matter how many figures consume it.

By default the benchmarks run the full paper grid (all six datasets,
both GPU systems).  Set ``REPRO_BENCH_QUICK=1`` to sweep a three-dataset
subset — useful while iterating.
"""

from __future__ import annotations

import os

import pytest

QUICK = os.environ.get("REPRO_BENCH_QUICK") == "1"

#: Dataset subset used when REPRO_BENCH_QUICK=1.
QUICK_DATASETS = ("delaunay", "human", "kron")


@pytest.fixture(scope="session")
def sweep_kwargs():
    """Keyword arguments selecting the benchmark grid."""
    if QUICK:
        return {"datasets": QUICK_DATASETS}
    return {}


@pytest.fixture(scope="session")
def bench_datasets():
    from repro.graph.datasets import DATASET_NAMES

    return QUICK_DATASETS if QUICK else DATASET_NAMES


def check_expectations(expectations, result):
    """Assert every shared paper expectation against one result.

    The acceptance bands live in :mod:`repro.harness.expectations`,
    shared with the ``repro bench`` fidelity scoreboard.
    """
    for expectation in expectations:
        measured = expectation.extract(result)
        assert expectation.check(measured), (
            expectation.id,
            measured,
            expectation.band_text(),
        )


def run_once(benchmark, func, *args, **kwargs):
    """Run ``func`` exactly once under pytest-benchmark timing.

    Simulation experiments are deterministic and expensive; statistical
    repetition would only re-read memoized results.
    """
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)
