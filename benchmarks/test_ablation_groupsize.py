"""Ablation — grouping group size (Section 4.3).

The paper limits groups to 8 elements, arguing that 32-element groups
would cost sets (for the same capacity) while sparse frontiers rarely
fill them.  This sweep reproduces that trade-off: grouping quality per
set-count at fixed table capacity.
"""

import numpy as np

from repro.core import HashTableConfig, group_order, grouping_quality
from repro.graph import load_dataset
from repro.mem import LINE_BYTES

from .conftest import run_once

GROUP_SIZES = (2, 4, 8, 16, 32)
CAPACITY_BYTES = 9 * 1024  # TX1 grouping table at PAPER_SCALE


def test_ablation_group_size(benchmark):
    graph = load_dataset("kron")
    rng = np.random.default_rng(7)
    sample = rng.choice(graph.edges, size=50_000, replace=False)
    blocks = (sample * 4) // LINE_BYTES

    def sweep():
        quality = {}
        for size in GROUP_SIZES:
            # Fixed capacity: larger groups mean fewer sets.
            entry_bytes = size * 4
            entries = max(1, CAPACITY_BYTES // entry_bytes)
            table = HashTableConfig("ablate", entries * entry_bytes, 16, entry_bytes)
            perm = group_order(blocks, table, group_size=size)
            quality[size] = grouping_quality(blocks, perm)
        return quality

    quality = run_once(benchmark, sweep)
    baseline = grouping_quality(blocks, np.arange(blocks.size))
    print()
    print("== ablation: grouping group size at fixed capacity (kron) ==")
    print(f"  ungrouped adjacency: {baseline:.3f}")
    for size in GROUP_SIZES:
        print(f"  group_size={size:2d}: adjacency {quality[size]:.3f}")
    # All grouped configurations beat the ungrouped stream.
    assert all(q > baseline for q in quality.values())
    # Section 4.3's claim: going beyond 8 buys little or hurts, because
    # each doubling halves the set count.
    assert quality[8] >= quality[32] * 0.95
