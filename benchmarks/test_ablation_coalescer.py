"""Ablation — SCU coalescing-unit merge window (Table 1).

The coalescing unit merges same-sector requests within a bounded
window.  Sequential compaction walks merge perfectly already at the
paper's 4-request window; the sweep shows where the knee sits for the
ragged CSR gathers.
"""

import numpy as np

from repro.core.ops import expanded_indices
from repro.graph import load_dataset
from repro.mem import coalesce_stream

from .conftest import run_once

WINDOWS = (1, 2, 4, 8, 16)


def test_ablation_merge_window(benchmark):
    graph = load_dataset("kron")
    # The expansion gather's address stream for a large frontier.
    frontier = np.unique(np.random.default_rng(3).choice(graph.num_nodes, 4096))
    gather = expanded_indices(graph.offsets[frontier], graph.out_degrees[frontier])
    addresses = gather * 4

    def sweep():
        return {
            w: coalesce_stream(addresses, merge_window=w).transactions
            for w in WINDOWS
        }

    transactions = run_once(benchmark, sweep)
    print()
    print("== ablation: SCU merge window on the CSR expansion gather ==")
    for w in WINDOWS:
        factor = addresses.size / transactions[w]
        print(f"  window={w:2d}: {transactions[w]:8d} transactions "
              f"({factor:.2f} accesses/transaction)")
    ordered = [transactions[w] for w in WINDOWS]
    # Wider windows never increase traffic.
    assert ordered == sorted(ordered, reverse=True)
    # The knee: window 8 (one 32B sector of 4B elements) captures almost
    # everything a window of 16 does.
    assert transactions[8] <= transactions[16] * 1.05
    # But window 1 (no merging) pays heavily on contiguous runs.
    assert transactions[1] > 2 * transactions[8]
