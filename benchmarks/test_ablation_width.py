"""Ablation — SCU pipeline width (Table 2's first scalability knob).

The paper picks width 1 for the TX1 and width 4 for the GTX980; this
sweep shows why: wider pipelines keep helping until the unit becomes
memory-bound, while area grows linearly per lane.
"""

import pytest

from repro.algorithms import SystemMode, run_algorithm
from repro.core import SCU_CONFIGS
from repro.graph import load_dataset

from .conftest import run_once

WIDTHS = (1, 2, 4, 8)


@pytest.mark.parametrize("gpu", ["TX1", "GTX980"])
def test_ablation_pipeline_width(benchmark, gpu):
    graph = load_dataset("kron")

    def sweep():
        times, areas = {}, {}
        for width in WIDTHS:
            config = SCU_CONFIGS[gpu].with_pipeline_width(width)
            report = run_algorithm(
                "bfs", graph, gpu, SystemMode.SCU_ENHANCED, scu_config=config
            ).report
            times[width] = report.time_s()
            areas[width] = config.area_mm2
        return times, areas

    times, areas = run_once(benchmark, sweep)
    print()
    print(f"== ablation: SCU pipeline width (BFS on kron, {gpu}) ==")
    for width in WIDTHS:
        print(
            f"  width={width}:  time={times[width] * 1e3:8.3f} ms"
            f"  area={areas[width]:6.2f} mm2"
        )
    # Wider never slower (monotone until memory-bound saturation).
    ordered = [times[w] for w in WIDTHS]
    for narrow, wide in zip(ordered, ordered[1:]):
        assert wide <= narrow * 1.02
    # Diminishing returns: 1->2 helps more than 4->8.
    gain_low = times[1] / times[2]
    gain_high = times[4] / times[8]
    assert gain_low >= gain_high * 0.98
    # Area is linear in lanes, so width 8 costs over 5x width 1.
    assert areas[8] > 5 * areas[1]
