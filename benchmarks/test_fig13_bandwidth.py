"""Figure 13 — memory bandwidth utilization, GPU vs GPU+SCU."""

from repro.harness import expectations_for, fig13_bandwidth_utilization, render_table

from .conftest import check_expectations, run_once


def test_fig13_bandwidth_utilization(benchmark, sweep_kwargs):
    result = run_once(benchmark, fig13_bandwidth_utilization, **sweep_kwargs)
    print()
    print(render_table(result))
    # Shared paper target: graph workloads fall far short of saturating
    # DRAM (paper Section 6.3) — fig13.* in the expectations table.
    check_expectations(expectations_for("fig13"), result)
    records = {
        (r[0], r[1], r[2]): r[3] for r in result.rows
    }
    for (algorithm, gpu, system), pct in records.items():
        assert pct > 0.0, (algorithm, gpu, system, pct)
    # PR sustains more bandwidth than BFS on the baseline: it is the
    # regular, streaming primitive (paper: "PR achieves higher memory
    # bandwidth usage due to its higher regularity").
    for gpu in ("GTX980", "TX1"):
        assert records[("pagerank", gpu, "GPU")] > records[("bfs", gpu, "GPU")]
