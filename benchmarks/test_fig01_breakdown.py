"""Figure 1 — fraction of GPU-baseline time spent in stream compaction."""

from repro.harness import fig1_compaction_breakdown, get_expectation, render_table

from .conftest import check_expectations, run_once


def test_fig1_compaction_breakdown(benchmark, sweep_kwargs):
    result = run_once(benchmark, fig1_compaction_breakdown, **sweep_kwargs)
    print()
    print(render_table(result))
    # Paper: stream compaction represents 25% to 55% of execution time.
    # The scaled simulation lands in (or near) that band for every
    # primitive; the shared expectation holds the loose envelope.
    envelope = get_expectation("fig1.compaction_share.mean")
    check_expectations([envelope], result)
    for pct in result.column("compaction_pct"):
        assert envelope.lo < pct < envelope.hi
    # PR compacts less than BFS/SSSP (it skips node-frontier compaction).
    pr = [r for r in result.rows if r[0] == "pagerank"]
    bfs = [r for r in result.rows if r[0] == "bfs"]
    assert min(b[2] for b in bfs) > min(p[2] for p in pr)
